(* The observability layer (lib/obs) and its contract with the rest of
   the machine: the sink's rollup must agree exactly with the pmem
   counters on every run — random programs x all schemes, crash and
   recovery included — a saved trace must replay to the same digest
   and the same bytes, the per-log overflow exceptions must carry
   their typed payloads, and the O(1) dirty-line index must keep the
   eviction stream deterministic under a fixed seed. *)

open Ido_util
open Ido_nvm
open Ido_region
open Ido_runtime
module Vm = Ido_vm.Vm
module Obs = Ido_obs.Obs
module Engine = Ido_check.Engine
module Trace = Ido_check.Trace

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* The sink in isolation *)

let test_rollup_basics () =
  let o = Obs.create () in
  Obs.emit o ~tid:0 ~fase:(-1) (Obs.Store 8);
  Obs.emit o ~tid:0 ~fase:3 (Obs.Log_append { log = "undo"; bytes = 32 });
  Obs.emit o ~tid:1 ~fase:4 (Obs.Log_append { log = "undo"; bytes = 32 });
  Obs.emit o ~tid:1 ~fase:4 Obs.Fase_exit;
  Alcotest.(check int) "count" 4 (Obs.count o);
  let t = Obs.total o in
  Alcotest.(check int) "stores" 1 t.Obs.stores;
  Alcotest.(check int) "appends" 2 t.Obs.log_appends;
  Alcotest.(check int) "log bytes" 64 t.Obs.log_bytes;
  Alcotest.(check int) "distinct fases" 2 (Obs.fases o);
  match Obs.per_fase o with
  | [ (3, a); (4, b) ] ->
      (* The machine-level store (fase -1) is in no per-FASE bucket. *)
      Alcotest.(check int) "fase 3 appends" 1 a.Obs.log_appends;
      Alcotest.(check int) "fase 4 appends" 1 b.Obs.log_appends;
      Alcotest.(check int) "fase 4 exits" 1 b.Obs.fase_exits;
      Alcotest.(check int) "fase 3 stores" 0 a.Obs.stores
  | l -> Alcotest.failf "per_fase returned %d buckets" (List.length l)

let test_check_mismatch () =
  let o = Obs.create () in
  Obs.emit o ~tid:0 ~fase:(-1) (Obs.Store 0);
  (match Obs.check o ~stores:1 ~writebacks:0 ~fences:0 ~evictions:0 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "consistent sink rejected: %s" m);
  match Obs.check o ~stores:2 ~writebacks:0 ~fences:0 ~evictions:0 with
  | Ok () -> Alcotest.fail "store undercount unnoticed"
  | Error m ->
      Alcotest.(check string) "names the counter" "obs/stores"
        (String.sub m 0 (String.length "obs/stores"))

let test_ndjson () =
  let o = Obs.create () in
  Obs.emit o ~tid:2 ~fase:7 (Obs.Log_append { log = "redo"; bytes = 16 });
  Obs.emit o ~tid:0 ~fase:(-1) Obs.Crash;
  match Obs.events o with
  | [ a; b ] ->
      Alcotest.(check string) "payload fields"
        {|{"type":"event","seq":0,"tid":2,"fase":7,"kind":"log_append","log":"redo","bytes":16}|}
        (Obs.event_to_ndjson a);
      Alcotest.(check string) "payload-free kind"
        {|{"type":"event","seq":1,"tid":0,"fase":-1,"kind":"crash"}|}
        (Obs.event_to_ndjson b)
  | l -> Alcotest.failf "buffered %d events" (List.length l)

let test_unbuffered () =
  let o = Obs.create ~buffer:false () in
  for _ = 1 to 5 do
    Obs.emit o ~tid:0 ~fase:0 (Obs.Fence 0)
  done;
  Alcotest.(check int) "count" 5 (Obs.count o);
  Alcotest.(check int) "fences" 5 (Obs.total o).Obs.fences;
  Alcotest.(check bool) "no buffer" true (Obs.events o = [])

(* ------------------------------------------------------------------ *)
(* The sink against the machine *)

(* Installing a sink must not perturb execution: clocks and counters
   are bit-identical with and without one. *)
let test_sink_no_perturbation () =
  let run with_obs =
    let m =
      Vm.create
        { (Vm.config Scheme.Ido) with seed = 7 }
        (Ido_workloads.Workload.named "stack")
    in
    if with_obs then Vm.set_obs m (Some (Obs.create ~buffer:false ()));
    ignore (Vm.spawn m ~fname:"init" ~args:[]);
    ignore (Vm.run m);
    Vm.flush_all m;
    ignore (Vm.spawn m ~fname:"worker" ~args:[ 10L ]);
    (match Vm.run m with `Idle -> () | _ -> failwith "stuck");
    let c = Pmem.counters (Vm.pmem m) in
    ( Vm.clock m, c.Pmem.stores, c.Pmem.clwbs, c.Pmem.writebacks,
      c.Pmem.fences, c.Pmem.evictions )
  in
  Alcotest.(check bool) "identical run" true (run false = run true)

(* The central invariant: over any program, any scheme, crash and
   recovery included, the sink sees exactly one event per counted pmem
   action.  Reuses the random single-FASE generator of the idempotence
   suite. *)
let prop_rollup_matches_counters =
  QCheck.Test.make
    ~name:"obs rollup equals pmem counters (all schemes, crash+recovery)"
    ~count:30 Test_idempotence.ops_arb (fun ops ->
      let prog = Test_idempotence.program_of ops in
      let seed = 1 + (Hashtbl.hash ops mod 1000) in
      List.for_all
        (fun scheme ->
          let m = Vm.create { (Vm.config scheme) with seed } prog in
          let obs = Obs.create ~buffer:false () in
          Vm.set_obs m (Some obs);
          let c0 = Pmem.counters (Vm.pmem m) in
          let stores0 = c0.Pmem.stores
          and writebacks0 = c0.Pmem.writebacks
          and fences0 = c0.Pmem.fences
          and evictions0 = c0.Pmem.evictions in
          ignore (Vm.spawn m ~fname:"init" ~args:[]);
          ignore (Vm.run m);
          Vm.flush_all m;
          ignore (Vm.spawn m ~fname:"worker" ~args:[ 0L ]);
          let t0 = Vm.clock m in
          (match Vm.run ~until:(t0 + 500) m with
          | `Until ->
              Vm.crash m;
              ignore (Vm.recover m)
          | `Idle -> ()
          | _ -> failwith "worker stuck");
          (match Vm.run m with `Idle -> () | _ -> failwith "resume stuck");
          let c = Pmem.counters (Vm.pmem m) in
          Obs.check obs
            ~stores:(c.Pmem.stores - stores0)
            ~writebacks:(c.Pmem.writebacks - writebacks0)
            ~fences:(c.Pmem.fences - fences0)
            ~evictions:(c.Pmem.evictions - evictions0)
          = Ok ())
        Scheme.all)

(* Every supported scheme x workload pair reconciles on a crash-free
   traced run (the same check `ido_check trace` performs). *)
let test_traced_all_pairs () =
  List.iter
    (fun workload ->
      List.iter
        (fun scheme ->
          if Engine.supported scheme workload then
            let spec = Engine.defaults ~ops:5 ~scheme ~workload () in
            let tr = Engine.run_traced spec in
            match tr.Engine.t_consistency with
            | Ok () -> ()
            | Error m ->
                Alcotest.failf "%s/%s: %s" (Scheme.name scheme) workload m)
        Scheme.all)
    Ido_workloads.Workload.names

(* A trace file is a complete, portable repro: loading it and
   replaying from the header alone reproduces the digest, and saving
   the replay reproduces the file byte for byte. *)
let test_trace_replay_digest () =
  let spec = Engine.defaults ~ops:8 ~scheme:Scheme.Ido ~workload:"queue" () in
  let tr = Engine.run_traced ~index:200 spec in
  (match tr.Engine.t_consistency with
  | Ok () -> ()
  | Error m -> Alcotest.failf "traced injection inconsistent: %s" m);
  let path = Filename.temp_file "ido_trace" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save tr path;
      let s = Trace.load path in
      Alcotest.(check int) "event count survives the file"
        (Obs.count tr.Engine.t_obs) s.Trace.events;
      Alcotest.(check string) "digest survives the file" tr.Engine.t_digest
        s.Trace.digest;
      Alcotest.(check (option int)) "index survives the file" (Some 200)
        s.Trace.index;
      let again = Trace.replay s in
      Alcotest.(check string) "replay digest" s.Trace.digest
        again.Engine.t_digest;
      let path2 = Filename.temp_file "ido_trace" ".ndjson" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path2)
        (fun () ->
          Trace.save again path2;
          let read f = In_channel.with_open_bin f In_channel.input_all in
          Alcotest.(check string) "byte-identical re-save" (read path)
            (read path2)))

(* ------------------------------------------------------------------ *)
(* Eviction determinism (the O(1) dirty-line index) *)

let test_evict_stream_deterministic () =
  let record () =
    let pm = Pmem.create ~cache_lines:4 ~rng:(Rng.create 99) (1 lsl 12) in
    let evs = ref [] in
    Pmem.set_event_hook pm
      (Some (function Pmem.Ev_evict a -> evs := a :: !evs | _ -> ()));
    let r = Rng.create 5 in
    for _ = 1 to 500 do
      Pmem.store pm (Rng.int r (1 lsl 12)) 1L
    done;
    List.rev !evs
  in
  let a = record () and b = record () in
  Alcotest.(check bool) "evictions happened" true (List.length a > 100);
  Alcotest.(check (list int)) "victim stream identical" a b

(* ------------------------------------------------------------------ *)
(* Typed log-overflow exceptions (one per remaining log) *)

let mk () =
  let pm = Pmem.create ~rng:(Rng.create 1) (1 lsl 18) in
  let region = Region.create pm in
  let w = Pwriter.create pm Latency.default in
  (pm, region, w)

let test_justdo_lock_overflow () =
  let _, region, w = mk () in
  let node = Justdo_log.create w region ~tid:2 ~nregs:4 in
  Alcotest.check_raises "overflow"
    (Lognode.Log_overflow
       {
         Lognode.scheme = "justdo";
         tid = 2;
         log = "lock_array";
         capacity = Ido_log.lock_slots;
       })
    (fun () ->
      for h = 1 to Ido_log.lock_slots + 1 do
        Justdo_log.record_acquire w node ~holder:h
      done)

let test_page_set_overflow () =
  let _, region, w = mk () in
  let node = Page_log.create w region ~tid:1 ~cap_pages:2 in
  Page_log.begin_fase w node ~seq:1;
  Alcotest.check_raises "overflow"
    (Lognode.Log_overflow
       { Lognode.scheme = "nvthreads"; tid = 1; log = "page_set"; capacity = 2 })
    (fun () ->
      for p = 10 to 12 do
        ignore (Page_log.log_page w node ~page:p)
      done)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "rollup and per-FASE attribution" `Quick
          test_rollup_basics;
        Alcotest.test_case "check flags mismatches" `Quick test_check_mismatch;
        Alcotest.test_case "ndjson event shape" `Quick test_ndjson;
        Alcotest.test_case "unbuffered sink keeps rollups only" `Quick
          test_unbuffered;
        Alcotest.test_case "sink does not perturb execution" `Quick
          test_sink_no_perturbation;
        qtest prop_rollup_matches_counters;
      ] );
    ( "obs.traced",
      [
        Alcotest.test_case "obs/counters reconcile on every pair" `Quick
          test_traced_all_pairs;
        Alcotest.test_case "trace replays to the same digest and bytes" `Quick
          test_trace_replay_digest;
      ] );
    ( "obs.pmem",
      [
        Alcotest.test_case "evict victim stream deterministic under seed"
          `Quick test_evict_stream_deterministic;
      ] );
    ( "obs.overflow",
      [
        Alcotest.test_case "justdo lock array" `Quick test_justdo_lock_overflow;
        Alcotest.test_case "nvthreads page set" `Quick test_page_set_overflow;
      ] );
  ]
