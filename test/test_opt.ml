(* The persistence-redundancy optimizer (Ido_opt).

   Each O1xx rewrite fires on a hand-built minimal trigger with its
   obligations held (the optimized program lints clean, reaches the
   same final heap, stays crash-atomic, and never emits more persist
   traffic than the base program); the over-optimization corpus
   entries — each modelling one rewrite fired past its guard — are
   caught by the lint obligation; and, property-checked over the PR-3
   random-CFG generator, optimization across every scheme preserves
   lint-cleanliness, crash atomicity, and the persist-event bound. *)

open Ido_ir
open Ido_runtime
module Vm = Ido_vm.Vm
module Pmem = Ido_nvm.Pmem
module Wcommon = Ido_workloads.Wcommon
module Instrument = Ido_instrument.Instrument
module Opt = Ido_opt.Opt
module Rewrite = Ido_opt.Rewrite
module Mutate = Ido_lint.Mutate
module Lintrun = Ido_check.Lintrun

let qtest = QCheck_alcotest.to_alcotest

let codes rewrites =
  List.sort_uniq compare (List.map (fun r -> r.Rewrite.code) rewrites)

let optimize scheme prog =
  Opt.optimize scheme (Instrument.instrument scheme prog)

(* ------------------------------------------------------------------ *)
(* Scaffold: [init] allocates a small cell array (plus two lock
   words) and publishes it as root 0; [worker] is built to order.     *)

let cells = 8

let with_worker build =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let arr = Wcommon.alloc_node b (cells + 2) [] in
  for i = 0 to cells - 1 do
    Builder.store b Ir.Persistent (Ir.Reg arr) i
      (Ir.Imm (Int64.of_int (100 + i)))
  done;
  Wcommon.set_root b 0 (Ir.Reg arr);
  Builder.ret b None;
  let init = Builder.finish b in
  let b, _ = Builder.create ~name:"worker" ~nparams:1 in
  let arr = Wcommon.get_root b 0 in
  build b arr;
  Builder.ret b None;
  { Ir.funcs = [ ("init", init); ("worker", Builder.finish b) ] }

let heap_of m =
  let pm = Vm.pmem m in
  let arr = Int64.to_int (Ido_region.Region.get_root (Vm.region m) 0) in
  Array.init cells (fun i -> Pmem.load pm (arr + i))

let initial_heap = Array.init cells (fun i -> Int64.of_int (100 + i))

(* Crash-free run to completion; persist traffic is measured from the
   durable-setup point, exactly the window the optimizer may shrink.
   [heap] abstracts the heap reader: the hand-built triggers and the
   random-CFG programs size their cell arrays differently. *)
let run_full_with heap scheme ~opt prog =
  let m = Vm.create { (Vm.config scheme) with opt } prog in
  ignore (Vm.spawn m ~fname:"init" ~args:[]);
  ignore (Vm.run m);
  Vm.flush_all m;
  let c0 = Pmem.counters (Vm.pmem m) in
  let t0 = Vm.clock m in
  ignore (Vm.spawn m ~fname:"worker" ~args:[ 0L ]);
  (match Vm.run m with `Idle -> () | _ -> failwith "opt test: run stuck");
  Vm.flush_all m;
  let c1 = Pmem.counters (Vm.pmem m) in
  let persists = c1.Pmem.clwbs - c0.Pmem.clwbs + c1.Pmem.fences - c0.Pmem.fences in
  (heap m, persists, Vm.clock m - t0)

let run_crash_with heap scheme ~opt prog crash_at =
  let m = Vm.create { (Vm.config scheme) with opt } prog in
  ignore (Vm.spawn m ~fname:"init" ~args:[]);
  ignore (Vm.run m);
  Vm.flush_all m;
  let t0 = Vm.clock m in
  ignore (Vm.spawn m ~fname:"worker" ~args:[ 0L ]);
  (match Vm.run ~until:(t0 + crash_at) m with
  | `Until | `Idle -> ()
  | _ -> failwith "opt test: crash run stuck");
  Vm.crash m;
  ignore (Vm.recover m);
  heap m

let run_full scheme ~opt prog = run_full_with heap_of scheme ~opt prog
let run_crash scheme ~opt prog at = run_crash_with heap_of scheme ~opt prog at

(* The random-CFG programs allocate Test_idempotence's 16-cell array. *)
let tfull scheme ~opt prog =
  run_full_with Test_idempotence.heap_cells scheme ~opt prog

let tcrash scheme ~opt prog at =
  run_crash_with Test_idempotence.heap_cells scheme ~opt prog at

(* The full obligation bundle on a hand-built trigger: the named
   rewrite fires, the optimized program re-lints clean, both pipelines
   reach the same final heap, the optimized run saves persist events,
   and crash+recovery of the optimized program never exposes a torn
   heap. *)
let check_trigger scheme prog code =
  let optimized, rewrites = optimize scheme prog in
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on its trigger (got %s)" code
       (String.concat "," (codes rewrites)))
    true
    (List.mem code (codes rewrites));
  Opt.lint_obligation scheme optimized rewrites;
  let base_heap, base_persists, _ = run_full scheme ~opt:false prog in
  let opt_heap, opt_persists, end_clock = run_full scheme ~opt:true prog in
  Alcotest.(check bool)
    (code ^ ": optimized run reaches the base final heap")
    true (opt_heap = base_heap);
  Alcotest.(check bool)
    (Printf.sprintf "%s: persist events do not increase (%d -> %d)" code
       base_persists opt_persists)
    true
    (opt_persists <= base_persists);
  List.iter
    (fun frac ->
      let got =
        run_crash scheme ~opt:true prog (max 1 (end_clock * frac / 10))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: crash at %d/10 recovers all-or-nothing" code frac)
        true
        (got = base_heap || got = initial_heap))
    [ 1; 3; 5; 7; 9 ]

(* -- O101: the second critical section only reads, so its unlock's
      durable commit covers provably-clean lines -- *)
let o101_trigger () =
  let prog =
    with_worker (fun b arr ->
        let l1 = Builder.bin b Ir.Add (Ir.Reg arr) (Ir.Imm (Int64.of_int cells)) in
        let l2 =
          Builder.bin b Ir.Add (Ir.Reg arr) (Ir.Imm (Int64.of_int (cells + 1)))
        in
        Builder.lock b (Ir.Reg l1);
        Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 7L);
        Builder.unlock b (Ir.Reg l1);
        Builder.lock b (Ir.Reg l2);
        ignore (Builder.load b Ir.Persistent (Ir.Reg arr) 1);
        Builder.unlock b (Ir.Reg l2))
  in
  check_trigger Scheme.Atlas prog "O101"

(* -- O102: a write-free critical section needs no hooks at all -- *)
let o102_trigger () =
  let prog =
    with_worker (fun b arr ->
        let l = Builder.bin b Ir.Add (Ir.Reg arr) (Ir.Imm (Int64.of_int cells)) in
        Builder.lock b (Ir.Reg l);
        ignore (Builder.load b Ir.Persistent (Ir.Reg arr) 0);
        Builder.unlock b (Ir.Reg l))
  in
  check_trigger Scheme.Ido prog "O102";
  (* all-or-nothing: every hook is gone from the optimized worker *)
  let optimized, _ = optimize Scheme.Ido prog in
  let worker = List.assoc "worker" optimized.Ir.funcs in
  Alcotest.(check bool)
    "O102 strips every hook" false
    (Array.exists
       (fun (blk : Ir.block) -> Array.exists Ir.is_hook blk.Ir.instrs)
       worker.Ir.blocks)

(* -- O103: the same stable cell stored twice in one protection
      window; the second capture grant duplicates the first -- *)
let o103_trigger () =
  let prog =
    with_worker (fun b arr ->
        let l = Builder.bin b Ir.Add (Ir.Reg arr) (Ir.Imm (Int64.of_int cells)) in
        Builder.lock b (Ir.Reg l);
        Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 7L);
        Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Imm 8L);
        Builder.unlock b (Ir.Reg l))
  in
  check_trigger Scheme.Atlas prog "O103"

(* -- O104: a do-while loop re-capturing the same cell on every
      iteration; the grant hoists to the preheader -- *)
let o104_trigger () =
  let prog =
    with_worker (fun b arr ->
        let l = Builder.bin b Ir.Add (Ir.Reg arr) (Ir.Imm (Int64.of_int cells)) in
        Builder.lock b (Ir.Reg l);
        let i = Builder.mov b (Ir.Imm 0L) in
        let body = Builder.block b "body" in
        let exit_ = Builder.block b "exit" in
        Builder.br b body;
        Builder.switch_to b body;
        Builder.store b Ir.Persistent (Ir.Reg arr) 0 (Ir.Reg i);
        Builder.assign_bin b i Ir.Add (Ir.Reg i) (Ir.Imm 1L);
        let c = Builder.bin b Ir.Lt (Ir.Reg i) (Ir.Imm 3L) in
        Builder.cbr b (Ir.Reg c) body exit_;
        Builder.switch_to b exit_;
        Builder.unlock b (Ir.Reg l))
  in
  check_trigger Scheme.Atlas prog "O104"

(* ------------------------------------------------------------------ *)
(* Over-optimization corpus: each entry models one rewrite fired past
   its guard; the lint obligation must catch all three.               *)

let over_opt_mutants =
  [ "over-opt-flush-elim"; "over-opt-fase-elide"; "over-opt-hoist" ]

let over_opt_caught () =
  List.iter
    (fun name ->
      match Mutate.find name with
      | None -> Alcotest.fail (name ^ " missing from the mutation corpus")
      | Some m ->
          let o = Lintrun.run_mutant m in
          Alcotest.(check bool)
            (Printf.sprintf "%s caught as %s" name m.Mutate.expect)
            true o.Lintrun.caught)
    over_opt_mutants

(* ------------------------------------------------------------------ *)
(* Properties over the PR-3 random-CFG generator.                     *)

let all_schemes = Scheme.all

let runnable_schemes =
  Scheme.[ Ido; Justdo; Atlas; Mnemosyne; Nvthreads ]

(* Optimization preserves lint-cleanliness for every scheme whose
   instrumented base program lints clean (all seven are exercised; the
   implication is vacuous only where the base itself diagnoses). *)
let prop_optimized_lint_clean =
  QCheck.Test.make ~name:"optimized random CFGs re-lint clean" ~count:30
    Test_idempotence.trees_arb
    (fun trees ->
      let prog = Test_idempotence.program_of_trees trees in
      List.for_all
        (fun scheme ->
          let base = Instrument.instrument scheme prog in
          let optimized, rewrites = Opt.optimize scheme base in
          Ido_lint.Lint.lint_program scheme base <> []
          ||
          match Opt.lint_obligation scheme optimized rewrites with
          | () -> true
          | exception Opt.Opt_violation msg ->
              QCheck.Test.fail_reportf "%s: %s" (Scheme.name scheme) msg)
        all_schemes)

(* Same final heap, and never more persist traffic, on every scheme
   the random programs can run under. *)
let prop_optimized_counters_bounded =
  QCheck.Test.make
    ~name:"optimization never increases persist events" ~count:15
    Test_idempotence.trees_arb
    (fun trees ->
      let prog = Test_idempotence.program_of_trees trees in
      List.for_all
        (fun scheme ->
          let base_heap, base_persists, _ = tfull scheme ~opt:false prog in
          let opt_heap, opt_persists, _ = tfull scheme ~opt:true prog in
          (base_heap = opt_heap && opt_persists <= base_persists)
          || QCheck.Test.fail_reportf
               "%s: heap %s, persists %d -> %d" (Scheme.name scheme)
               (if base_heap = opt_heap then "ok" else "DIVERGED")
               base_persists opt_persists)
        runnable_schemes)

(* The optimized program stays crash-atomic at every injection
   instant: after crash + recovery the heap is the reference or the
   initial state, never a torn mixture. *)
let prop_optimized_crash_atomic =
  QCheck.Test.make
    ~name:"optimized random CFGs stay crash-atomic" ~count:10
    Test_idempotence.trees_arb
    (fun trees ->
      let prog = Test_idempotence.program_of_trees trees in
      List.for_all
        (fun scheme ->
          let reference, _, end_clock = tfull scheme ~opt:true prog in
          List.for_all
            (fun frac ->
              let got =
                tcrash scheme ~opt:true prog (max 1 (end_clock * frac / 10))
              in
              got = reference || got = Test_idempotence.initial_cells
              || QCheck.Test.fail_reportf "%s: torn heap at %d/10"
                   (Scheme.name scheme) frac)
            [ 2; 5; 8 ])
        runnable_schemes)

let suites =
  [
    ( "opt",
      [
        Alcotest.test_case "O101 clean durable commit elided" `Quick
          o101_trigger;
        Alcotest.test_case "O102 write-free FASE elided" `Quick o102_trigger;
        Alcotest.test_case "O103 duplicate capture elided" `Quick o103_trigger;
        Alcotest.test_case "O104 loop-invariant capture hoisted" `Quick
          o104_trigger;
        Alcotest.test_case "over-optimization corpus caught" `Quick
          over_opt_caught;
        qtest prop_optimized_lint_clean;
        qtest prop_optimized_counters_bounded;
        qtest prop_optimized_crash_atomic;
      ] );
  ]
