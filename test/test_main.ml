(* Aggregated alcotest entry point; each module contributes suites. *)

let () =
  Alcotest.run "ido"
    (Test_util.suites @ Test_nvm.suites @ Test_region.suites @ Test_ir.suites
   @ Test_analysis.suites @ Test_idempotence.suites @ Test_instrument.suites
   @ Test_vm.suites @ Test_runtime.suites @ Test_recovery.suites
   @ Test_workloads.suites @ Test_harness.suites @ Test_check.suites
   @ Test_obs.suites @ Test_pool.suites @ Test_lint.suites
   @ Test_serve.suites @ Test_fuzz.suites @ Test_opt.suites)
