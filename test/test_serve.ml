(* Tier-1 coverage for the request-serving layer (lib/serve) and the
   first-class Spec/Workload API it is built on: nearest-rank
   percentile accounting on hand-computed streams, generator and
   routing invariants, -j determinism of a full cell, crash+recovery
   oracle validation on a random shard (qcheck), Spec JSON
   round-tripping, and the workload registry contract. *)

open Ido_runtime
open Ido_serve

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Lat: nearest-rank percentiles, hand-computed. *)

let percentile_hand () =
  (* 5 sorted values: rank(q) = ceil (q/100 * 5). *)
  let s = [| 1; 3; 5; 7; 9 |] in
  Alcotest.(check int) "p50 of 5 = 3rd" 5 (Lat.percentile s 50.0);
  Alcotest.(check int) "p60 of 5 = 3rd" 5 (Lat.percentile s 60.0);
  Alcotest.(check int) "p61 of 5 = 4th" 7 (Lat.percentile s 61.0);
  Alcotest.(check int) "p95 of 5 = 5th" 9 (Lat.percentile s 95.0);
  Alcotest.(check int) "p99 of 5 = 5th" 9 (Lat.percentile s 99.0);
  Alcotest.(check int) "p100 = max" 9 (Lat.percentile s 100.0);
  Alcotest.(check int) "p0 clamps to 1st" 1 (Lat.percentile s 0.0);
  Alcotest.(check int) "singleton" 42 (Lat.percentile [| 42 |] 50.0);
  Alcotest.(check int) "empty = 0" 0 (Lat.percentile [||] 99.0)

let percentile_hundred () =
  (* 1..100: pK is exactly K. *)
  let s = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "p50" 50 (Lat.percentile s 50.0);
  Alcotest.(check int) "p95" 95 (Lat.percentile s 95.0);
  Alcotest.(check int) "p99" 99 (Lat.percentile s 99.0)

let of_latencies_hand () =
  (* Unsorted input; of_latencies must sort a copy. *)
  let input = [| 7; 1; 9; 3; 5 |] in
  let st = Lat.of_latencies ~dropped:2 input in
  Alcotest.(check int) "served" 5 st.Lat.served;
  Alcotest.(check int) "dropped" 2 st.Lat.dropped;
  Alcotest.(check (float 1e-9)) "mean" 5.0 st.Lat.mean_ns;
  Alcotest.(check int) "p50" 5 st.Lat.p50;
  Alcotest.(check int) "p95" 9 st.Lat.p95;
  Alcotest.(check int) "p99" 9 st.Lat.p99;
  Alcotest.(check int) "max" 9 st.Lat.max_ns;
  Alcotest.(check (array int)) "input untouched" [| 7; 1; 9; 3; 5 |] input

let of_latencies_empty () =
  let st = Lat.of_latencies [||] in
  Alcotest.(check int) "served" 0 st.Lat.served;
  Alcotest.(check int) "p99" 0 st.Lat.p99;
  Alcotest.(check (float 1e-9)) "mean" 0.0 st.Lat.mean_ns

let percentile_matches_spec =
  QCheck.Test.make ~name:"percentile is the nearest-rank element" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 60) (int_bound 1000))
        (float_range 1.0 100.0))
    (fun (l, q) ->
      let s = Array.of_list (List.sort compare l) in
      let n = Array.length s in
      let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      Lat.percentile s q = s.(rank - 1))

(* ------------------------------------------------------------------ *)
(* Gen: stream and routing invariants. *)

let config ?(workload = "queue") ?(scheme = Scheme.Ido) ?(seed = 7)
    ?(shards = 4) ?(batch = 4) ?(requests = 200) ?zipf () =
  Config.make ~seed ~shards ~batch ~requests ?zipf ~workload ~scheme ()

let stream_invariants () =
  let c = config ~requests:500 ~zipf:0.99 () in
  let s = Gen.stream c ~key_range:64 in
  Alcotest.(check int) "length" 500 (Array.length s);
  Array.iteri
    (fun i (r : Gen.request) ->
      if r.Gen.id <> i then Alcotest.failf "id %d at position %d" r.Gen.id i;
      if i > 0 && s.(i - 1).Gen.arrival > r.Gen.arrival then
        Alcotest.failf "arrivals not monotone at %d" i;
      if r.Gen.key < 0 || r.Gen.key >= 64 then
        Alcotest.failf "key %d out of range" r.Gen.key;
      if r.Gen.dice < 0 || r.Gen.dice >= 100 then
        Alcotest.failf "dice %d out of range" r.Gen.dice;
      if r.Gen.shard <> Gen.shard_of ~shards:4 r.Gen.key then
        Alcotest.failf "shard mismatch at %d" i)
    s

let stream_deterministic () =
  let c = config ~requests:300 () in
  let a = Gen.stream c ~key_range:128 and b = Gen.stream c ~key_range:128 in
  Alcotest.(check bool) "same seed, same stream" true (a = b)

let partition_preserves () =
  let c = config ~shards:3 ~requests:400 () in
  let s = Gen.stream c ~key_range:256 in
  let parts = Gen.partition c s in
  Alcotest.(check int) "3 sub-streams" 3 (Array.length parts);
  let total = Array.fold_left (fun a p -> a + Array.length p) 0 parts in
  Alcotest.(check int) "no request lost" (Array.length s) total;
  Array.iteri
    (fun sh p ->
      Array.iteri
        (fun i (r : Gen.request) ->
          if r.Gen.shard <> sh then Alcotest.failf "request on wrong shard";
          if i > 0 && p.(i - 1).Gen.arrival > r.Gen.arrival then
            Alcotest.failf "sub-stream %d not arrival-ordered" sh)
        p)
    parts

let shard_of_stable () =
  (* A key must route identically however often we ask. *)
  for k = 0 to 199 do
    Alcotest.(check int)
      (Printf.sprintf "key %d" k)
      (Gen.shard_of ~shards:4 k) (Gen.shard_of ~shards:4 k)
  done;
  (* All shards reachable over a modest key range. *)
  let hit = Array.make 4 false in
  for k = 0 to 199 do
    hit.(Gen.shard_of ~shards:4 k) <- true
  done;
  Alcotest.(check (array bool)) "all shards hit" [| true; true; true; true |] hit

(* ------------------------------------------------------------------ *)
(* Serve: accounting and -j determinism. *)

let cell_accounting () =
  let c = config ~requests:150 () in
  let cell = Serve.run_cell ~obs:true c in
  Alcotest.(check int) "served = requests" 150 cell.Serve.stats.Lat.served;
  Alcotest.(check int) "nothing dropped" 0 cell.Serve.stats.Lat.dropped;
  Alcotest.(check bool) "oracle ok" true (cell.Serve.oracle = Ok ());
  Alcotest.(check bool) "obs reconciles" true (cell.Serve.consistency = Ok ());
  Alcotest.(check bool) "positive makespan" true (cell.Serve.makespan_ns > 0);
  let per_shard =
    List.fold_left (fun a o -> a + o.Shard.served) 0 cell.Serve.shards
  in
  Alcotest.(check int) "shard sums agree" 150 per_shard

let pooled_cell_identical spec_cfg () =
  let serial = Serve.run_cell ~obs:true spec_cfg in
  let pooled =
    Ido_util.Pool.with_pool 4 (fun pool ->
        Serve.run_cell ~pool ~obs:true spec_cfg)
  in
  Alcotest.(check string)
    "cell JSON identical at -j4"
    (Report.cell_json serial) (Report.cell_json pooled)

(* ------------------------------------------------------------------ *)
(* Crash on a random shard: after recovery, every shard's oracle and
   obs reconciliation must pass, and served + dropped must cover the
   whole stream. *)

let crash_gen =
  QCheck.Gen.(
    let* seed = int_range 0 10_000 in
    let* shards = int_range 1 4 in
    let* batch = int_range 1 4 in
    let* scheme = oneofl [ Scheme.Ido; Scheme.Justdo ] in
    let* crash_shard = int_range 0 (shards - 1) in
    let* after_ns = int_range 50 2_000 in
    return (seed, shards, batch, scheme, crash_shard, after_ns))

let crash_arb =
  QCheck.make crash_gen ~print:(fun (seed, shards, batch, scheme, cs, ns) ->
      Printf.sprintf "seed=%d shards=%d batch=%d scheme=%s crash=%d after=%d"
        seed shards batch (Scheme.name scheme) cs ns)

let crash_random_shard =
  QCheck.Test.make ~name:"oracles pass after a mid-stream shard crash"
    ~count:12 crash_arb (fun (seed, shards, batch, scheme, crash_shard, after_ns) ->
      let c = config ~workload:"queue" ~scheme ~seed ~shards ~batch ~requests:120 () in
      let streams = Gen.partition c (Gen.stream c ~key_range:1024) in
      let sub = Array.length streams.(crash_shard) in
      QCheck.assume (sub > 0);
      let crash =
        { Shard.shard = crash_shard; at_request = sub / 2; after_ns }
      in
      let cell = Serve.run_cell ~obs:true ~crash c in
      let total =
        cell.Serve.stats.Lat.served + cell.Serve.stats.Lat.dropped
      in
      (match cell.Serve.oracle with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "oracle: %s" m);
      (match cell.Serve.consistency with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "obs: %s" m);
      total = 120
      && List.exists (fun o -> o.Shard.crashed) cell.Serve.shards)

(* ------------------------------------------------------------------ *)
(* Spec: JSON round-trip through the trace-header fragment. *)

let spec_roundtrip () =
  let s =
    Ido_harness.Spec.make ~seed:97 ~scheme:Scheme.Atlas ~workload:"hmap"
      ~threads:3 ~ops:250 ()
  in
  let line = "{" ^ Ido_harness.Spec.json_fields s ^ "}" in
  let s' = Ido_harness.Spec.of_json ~fail:(fun m -> Failure m) line in
  Alcotest.(check bool) "scheme" true (s'.Ido_harness.Spec.scheme = Scheme.Atlas);
  Alcotest.(check string) "workload" "hmap" s'.Ido_harness.Spec.workload;
  Alcotest.(check int) "seed" 97 s'.Ido_harness.Spec.seed;
  Alcotest.(check int) "threads" 3 s'.Ido_harness.Spec.threads;
  Alcotest.(check int) "ops" 250 s'.Ido_harness.Spec.ops;
  (* Re-emitting must reproduce the fragment byte for byte. *)
  Alcotest.(check string)
    "fragment stable"
    (Ido_harness.Spec.json_fields s)
    (Ido_harness.Spec.json_fields s')

let spec_bad_json () =
  let fail m = Failure m in
  (match
     Ido_harness.Spec.of_json ~fail
       {|{"scheme":"zeta","workload":"queue","seed":1,"threads":1,"ops":1}|}
   with
  | _ -> Alcotest.fail "unknown scheme accepted"
  | exception Failure _ -> ());
  match
    Ido_harness.Spec.of_json ~fail {|{"scheme":"ido","workload":"queue"}|}
  with
  | _ -> Alcotest.fail "missing field accepted"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Workload registry contract. *)

let registry_contract () =
  let module W = Ido_workloads.Workload in
  Alcotest.(check bool) "at least 8 entries" true (List.length W.all >= 8);
  List.iter
    (fun (w : W.t) ->
      Alcotest.(check bool)
        (w.W.name ^ " findable") true
        (W.find w.W.name <> None);
      Alcotest.(check bool)
        (w.W.name ^ " key_range positive") true
        (w.W.request.W.key_range > 0);
      let p = W.program w in
      Alcotest.(check bool)
        (w.W.name ^ " has request entry") true
        (List.mem_assoc "request" p.Ido_ir.Ir.funcs);
      Alcotest.(check bool)
        (w.W.name ^ " has init entry") true
        (List.mem_assoc "init" p.Ido_ir.Ir.funcs))
    W.all;
  Alcotest.(check bool) "unknown not found" true (W.find "nosuch" = None);
  match W.get "nosuch" with
  | _ -> Alcotest.fail "get on unknown name must raise"
  | exception Invalid_argument m ->
      Alcotest.(check bool)
        "message lists valid names" true
        (let contains s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         contains m "queue" && contains m "kvcache50")

let suites =
  [
    ( "serve-lat",
      [
        Alcotest.test_case "nearest-rank by hand (n=5)" `Quick percentile_hand;
        Alcotest.test_case "pK of 1..100 is K" `Quick percentile_hundred;
        Alcotest.test_case "of_latencies hand-computed" `Quick of_latencies_hand;
        Alcotest.test_case "of_latencies on empty" `Quick of_latencies_empty;
        qtest percentile_matches_spec;
      ] );
    ( "serve-gen",
      [
        Alcotest.test_case "stream invariants" `Quick stream_invariants;
        Alcotest.test_case "stream deterministic" `Quick stream_deterministic;
        Alcotest.test_case "partition preserves order" `Quick
          partition_preserves;
        Alcotest.test_case "shard routing stable" `Quick shard_of_stable;
      ] );
    ( "serve-cell",
      [
        Alcotest.test_case "accounting adds up" `Quick cell_accounting;
        Alcotest.test_case "queue/ido s4: -j4 = serial" `Quick
          (pooled_cell_identical (config ()));
        Alcotest.test_case "kvcache50/justdo s2 b8 zipf: -j4 = serial" `Quick
          (pooled_cell_identical
             (config ~workload:"kvcache50" ~scheme:Scheme.Justdo ~shards:2
                ~batch:8 ~requests:150 ~zipf:0.99 ()));
        qtest crash_random_shard;
      ] );
    ( "serve-spec",
      [
        Alcotest.test_case "spec JSON round-trip" `Quick spec_roundtrip;
        Alcotest.test_case "spec rejects bad JSON" `Quick spec_bad_json;
        Alcotest.test_case "workload registry contract" `Quick
          registry_contract;
      ] );
  ]
