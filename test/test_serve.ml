(* Tier-1 coverage for the request-serving layer (lib/serve) and the
   first-class Spec/Workload API it is built on: nearest-rank
   percentile accounting on hand-computed streams, the log-bucketed
   quantile sketch against the exact reference (qcheck), streaming
   generator invariants and its equivalence to the materialised
   reference, the interarrival boundary-draw regression,
   -j determinism of a full cell, crash+recovery oracle validation on
   a random shard (qcheck), Spec JSON round-tripping, and the
   workload registry contract. *)

open Ido_runtime
open Ido_serve

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Lat: nearest-rank percentiles, hand-computed. *)

let percentile_hand () =
  (* 5 sorted values: rank(q) = ceil (q/100 * 5). *)
  let s = [| 1; 3; 5; 7; 9 |] in
  Alcotest.(check int) "p50 of 5 = 3rd" 5 (Lat.percentile s 50.0);
  Alcotest.(check int) "p60 of 5 = 3rd" 5 (Lat.percentile s 60.0);
  Alcotest.(check int) "p61 of 5 = 4th" 7 (Lat.percentile s 61.0);
  Alcotest.(check int) "p95 of 5 = 5th" 9 (Lat.percentile s 95.0);
  Alcotest.(check int) "p99 of 5 = 5th" 9 (Lat.percentile s 99.0);
  Alcotest.(check int) "p100 = max" 9 (Lat.percentile s 100.0);
  Alcotest.(check int) "p0 clamps to 1st" 1 (Lat.percentile s 0.0);
  Alcotest.(check int) "singleton" 42 (Lat.percentile [| 42 |] 50.0);
  Alcotest.(check int) "empty = 0" 0 (Lat.percentile [||] 99.0)

let percentile_hundred () =
  (* 1..100: pK is exactly K. *)
  let s = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "p50" 50 (Lat.percentile s 50.0);
  Alcotest.(check int) "p95" 95 (Lat.percentile s 95.0);
  Alcotest.(check int) "p99" 99 (Lat.percentile s 99.0)

let of_latencies_hand () =
  (* Unsorted input; of_latencies must sort a copy. *)
  let input = [| 7; 1; 9; 3; 5 |] in
  let st = Lat.of_latencies ~dropped:2 input in
  Alcotest.(check int) "served" 5 st.Lat.served;
  Alcotest.(check int) "dropped" 2 st.Lat.dropped;
  Alcotest.(check (float 1e-9)) "mean" 5.0 st.Lat.mean_ns;
  Alcotest.(check int) "p50" 5 st.Lat.p50;
  Alcotest.(check int) "p95" 9 st.Lat.p95;
  Alcotest.(check int) "p99" 9 st.Lat.p99;
  Alcotest.(check int) "max" 9 st.Lat.max_ns;
  Alcotest.(check (array int)) "input untouched" [| 7; 1; 9; 3; 5 |] input

let of_latencies_empty () =
  let st = Lat.of_latencies [||] in
  Alcotest.(check int) "served" 0 st.Lat.served;
  Alcotest.(check int) "p99" 0 st.Lat.p99;
  Alcotest.(check (float 1e-9)) "mean" 0.0 st.Lat.mean_ns

let percentile_matches_spec =
  QCheck.Test.make ~name:"percentile is the nearest-rank element" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 60) (int_bound 1000))
        (float_range 1.0 100.0))
    (fun (l, q) ->
      let s = Array.of_list (List.sort Int.compare l) in
      let n = Array.length s in
      let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      Lat.percentile s q = s.(rank - 1))

(* ------------------------------------------------------------------ *)
(* Lat: the quantile sketch against the exact reference. *)

let sketch_of_list l =
  let t = Lat.create () in
  List.iter (Lat.add t) l;
  t

let sketch_edges () =
  let empty = Lat.create () in
  Alcotest.(check int) "empty count" 0 (Lat.count empty);
  Alcotest.(check int) "empty p99" 0 (Lat.percentile_sketch empty 99.0);
  let st = Lat.stats empty in
  Alcotest.(check int) "empty served" 0 st.Lat.served;
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 st.Lat.mean_ns;
  (* A single sample is reported exactly at every quantile (the
     bucket top is capped at the observed max). *)
  let one = sketch_of_list [ 123_456_789 ] in
  let st = Lat.stats ~dropped:3 one in
  Alcotest.(check int) "n=1 p50 exact" 123_456_789 st.Lat.p50;
  Alcotest.(check int) "n=1 p99 exact" 123_456_789 st.Lat.p99;
  Alcotest.(check int) "n=1 max exact" 123_456_789 st.Lat.max_ns;
  Alcotest.(check int) "dropped carried" 3 st.Lat.dropped;
  Alcotest.(check (float 1e-9)) "n=1 mean exact" 123_456_789.0 st.Lat.mean_ns

let sketch_exact_small () =
  (* Values below 128 have unit buckets: the sketch IS nearest-rank. *)
  let l = List.init 127 (fun i -> (i * 89) mod 127) in
  let t = sketch_of_list l in
  let sorted = Array.of_list (List.sort Int.compare l) in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "p%.0f exact below 128" q)
        (Lat.percentile sorted q)
        (Lat.percentile_sketch t q))
    [ 1.0; 50.0; 90.0; 95.0; 99.0; 100.0 ]

let sketch_within_bound =
  QCheck.Test.make
    ~name:"sketch quantile within documented relative error of nearest-rank"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 400) (int_bound 2_000_000_000))
        (float_range 1.0 100.0))
    (fun (l, q) ->
      let t = sketch_of_list l in
      let sorted = Array.of_list (List.sort Int.compare l) in
      let exact = Lat.percentile sorted q in
      let approx = Lat.percentile_sketch t q in
      if approx < exact then
        QCheck.Test.fail_reportf "under-report: %d < exact %d" approx exact;
      let bound =
        exact + int_of_float (ceil (float_of_int exact *. Lat.relative_error))
      in
      if approx > bound then
        QCheck.Test.fail_reportf "over bound: %d > %d (exact %d)" approx bound
          exact;
      true)

let sketch_merge_is_exact =
  QCheck.Test.make ~name:"merged sketches = sketch of concatenation" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 200) (int_bound 1_000_000))
        (list_of_size Gen.(int_range 0 200) (int_bound 1_000_000)))
    (fun (a, b) ->
      let merged = sketch_of_list a in
      Lat.merge ~into:merged (sketch_of_list b);
      let whole = sketch_of_list (a @ b) in
      Lat.stats merged = Lat.stats whole)

(* ------------------------------------------------------------------ *)
(* Gen: the interarrival sampler at its boundaries (regression: a
   boundary draw u = 1.0 used to produce log 0 = -inf and poison the
   arrival clock with min_int gaps). *)

let gap_boundaries () =
  (* u = 1.0: survival clamps at 2^-53, so the gap is the largest a
     53-bit uniform can express: 1500 * 53 ln 2, rounded = 55105. *)
  Alcotest.(check int) "u=1.0 clamps finite" 55105
    (Gen.gap_of_u ~mean:1500.0 1.0);
  Alcotest.(check int) "u=0.0 floors at 1" 1 (Gen.gap_of_u ~mean:1500.0 0.0);
  Alcotest.(check bool)
    "u just below 1.0 stays below the clamp" true
    (Gen.gap_of_u ~mean:1500.0 (1.0 -. epsilon_float)
    <= Gen.gap_of_u ~mean:1500.0 1.0);
  (* Median of the exponential: mean * ln 2. *)
  Alcotest.(check int) "median draw" 1040 (Gen.gap_of_u ~mean:1500.0 0.5)

let gap_always_positive =
  QCheck.Test.make ~name:"gap is a positive int at every u in [0,1]"
    ~count:500
    QCheck.(float_range 0.0 1.0)
    (fun u ->
      let g = Gen.gap_of_u ~mean:1500.0 u in
      g >= 1 && g <= 55105)

(* ------------------------------------------------------------------ *)
(* Gen: streaming plan and per-shard iterator invariants. *)

let config ?(workload = "queue") ?(scheme = Scheme.Ido) ?(seed = 7)
    ?(shards = 4) ?(replicas = 0) ?reshard ?(batch = 4) ?(requests = 200)
    ?zipf () =
  Config.make ~seed
    ~topology:(Topology.make ~replicas ?reshard shards)
    ~batch ~requests ?zipf ~workload ~scheme ()

let plan_conserves_requests () =
  List.iter
    (fun shards ->
      let c = config ~shards ~requests:503 ~zipf:0.99 () in
      let p = Gen.plan c ~key_range:64 in
      let total = Array.fold_left ( + ) 0 (Gen.counts p) in
      Alcotest.(check int)
        (Printf.sprintf "counts sum at %d shards" shards)
        503 total)
    [ 1; 2; 3; 4; 7; 16 ]

let plan_zero_mass_shards () =
  (* More shards than keys: some shards own no keys, must get no
     requests, and their streams must be empty immediately. *)
  let c = config ~shards:16 ~requests:100 () in
  let p = Gen.plan c ~key_range:8 in
  Alcotest.(check int) "counts still sum" 100
    (Array.fold_left ( + ) 0 (Gen.counts p));
  let owned = Array.make 16 false in
  for k = 0 to 7 do
    owned.(Gen.shard_of ~shards:16 k) <- true
  done;
  for s = 0 to 15 do
    if not owned.(s) then begin
      Alcotest.(check int) (Printf.sprintf "shard %d keyless" s) 0
        (Gen.shard_count p s);
      Alcotest.(check bool)
        (Printf.sprintf "shard %d stream empty" s)
        true
        (Gen.peek (Gen.sub_stream p s) = None)
    end
  done

let stream_invariants () =
  let c = config ~requests:500 ~zipf:0.99 () in
  let p = Gen.plan c ~key_range:64 in
  for shard = 0 to 3 do
    let s = Gen.sub_stream p shard in
    Alcotest.(check int) "length = plan count" (Gen.shard_count p shard)
      (Gen.length s);
    let prev_arrival = ref 0 in
    let i = ref 0 in
    let rec go () =
      match Gen.next s with
      | None -> ()
      | Some (r : Gen.request) ->
          if r.Gen.id <> !i then
            Alcotest.failf "id %d at position %d" r.Gen.id !i;
          if r.Gen.arrival <= !prev_arrival then
            Alcotest.failf "arrivals not strictly increasing at %d" !i;
          prev_arrival := r.Gen.arrival;
          if r.Gen.key < 0 || r.Gen.key >= 64 then
            Alcotest.failf "key %d out of range" r.Gen.key;
          if r.Gen.dice < 0 || r.Gen.dice >= 100 then
            Alcotest.failf "dice %d out of range" r.Gen.dice;
          if r.Gen.shard <> shard then
            Alcotest.failf "request on wrong shard at %d" !i;
          if Gen.shard_of ~shards:4 r.Gen.key <> shard then
            Alcotest.failf "key %d routes off-shard" r.Gen.key;
          incr i;
          go ()
    in
    go ();
    Alcotest.(check int) "yields exactly length" (Gen.length s) !i
  done

let streaming_matches_materialized () =
  (* peek/next driving (with redundant peeks) must reproduce the
     materialised reference array element for element. *)
  List.iter
    (fun shards ->
      let c = config ~shards ~requests:300 ~zipf:0.99 () in
      let p = Gen.plan c ~key_range:256 in
      for shard = 0 to shards - 1 do
        let reference = Gen.materialize p shard in
        let s = Gen.sub_stream p shard in
        Array.iteri
          (fun i r ->
            (match Gen.peek s with
            | Some peeked when peeked = r -> ()
            | _ -> Alcotest.failf "peek differs at %d (shards=%d)" i shards);
            match Gen.next s with
            | Some nexted when nexted = r -> ()
            | _ -> Alcotest.failf "next differs at %d (shards=%d)" i shards)
          reference;
        Alcotest.(check bool)
          (Printf.sprintf "exhausted after %d" (Array.length reference))
          true
          (Gen.next s = None)
      done)
    [ 1; 2; 4; 5 ]

let stream_deterministic () =
  let c = config ~requests:300 () in
  let p1 = Gen.plan c ~key_range:128 and p2 = Gen.plan c ~key_range:128 in
  for shard = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "shard %d: same seed, same stream" shard)
      true
      (Gen.materialize p1 shard = Gen.materialize p2 shard)
  done

let shard_of_stable () =
  (* A key must route identically however often we ask. *)
  for k = 0 to 199 do
    Alcotest.(check int)
      (Printf.sprintf "key %d" k)
      (Gen.shard_of ~shards:4 k) (Gen.shard_of ~shards:4 k)
  done;
  (* All shards reachable over a modest key range. *)
  let hit = Array.make 4 false in
  for k = 0 to 199 do
    hit.(Gen.shard_of ~shards:4 k) <- true
  done;
  Alcotest.(check (array bool)) "all shards hit" [| true; true; true; true |] hit

(* ------------------------------------------------------------------ *)
(* Serve: accounting and -j determinism. *)

let cell_accounting () =
  let c = config ~requests:150 () in
  let cell = Serve.run_cell ~obs:true c in
  Alcotest.(check int) "served = requests" 150 cell.Serve.stats.Lat.served;
  Alcotest.(check int) "nothing dropped" 0 cell.Serve.stats.Lat.dropped;
  Alcotest.(check bool) "oracle ok" true (cell.Serve.oracle = Ok ());
  Alcotest.(check bool) "obs reconciles" true (cell.Serve.consistency = Ok ());
  Alcotest.(check bool) "positive makespan" true (cell.Serve.makespan_ns > 0);
  let per_shard =
    List.fold_left (fun a o -> a + o.Shard.served) 0 cell.Serve.shards
  in
  Alcotest.(check int) "shard sums agree" 150 per_shard

let pooled_cell_identical spec_cfg () =
  let serial = Serve.run_cell ~obs:true spec_cfg in
  let pooled =
    Ido_util.Pool.with_pool 4 (fun pool ->
        Serve.run_cell ~pool ~obs:true spec_cfg)
  in
  Alcotest.(check string)
    "cell JSON identical at -j4"
    (Report.cell_json serial) (Report.cell_json pooled)

(* ------------------------------------------------------------------ *)
(* Crash on a random shard: after recovery, every shard's oracle and
   obs reconciliation must pass, and served + dropped must cover the
   whole stream. *)

let crash_gen =
  QCheck.Gen.(
    let* seed = int_range 0 10_000 in
    let* shards = int_range 1 4 in
    let* batch = int_range 1 4 in
    let* scheme = oneofl [ Scheme.Ido; Scheme.Justdo ] in
    let* crash_shard = int_range 0 (shards - 1) in
    let* after_ns = int_range 50 2_000 in
    return (seed, shards, batch, scheme, crash_shard, after_ns))

let crash_arb =
  QCheck.make crash_gen ~print:(fun (seed, shards, batch, scheme, cs, ns) ->
      Printf.sprintf "seed=%d shards=%d batch=%d scheme=%s crash=%d after=%d"
        seed shards batch (Scheme.name scheme) cs ns)

let crash_random_shard =
  QCheck.Test.make ~name:"oracles pass after a mid-stream shard crash"
    ~count:12 crash_arb (fun (seed, shards, batch, scheme, crash_shard, after_ns) ->
      let c = config ~workload:"queue" ~scheme ~seed ~shards ~batch ~requests:120 () in
      let module W = Ido_workloads.Workload in
      let key_range = (W.get "queue").W.request.W.key_range in
      let sub = Gen.shard_count (Gen.plan c ~key_range) crash_shard in
      QCheck.assume (sub > 0);
      let crash =
        { Fault.shard = crash_shard; at_request = sub / 2; after_ns }
      in
      let cell = Serve.run_cell ~obs:true ~fault:(Fault.of_crash crash) c in
      let total =
        cell.Serve.stats.Lat.served + cell.Serve.stats.Lat.dropped
      in
      (match cell.Serve.oracle with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "oracle: %s" m);
      (match cell.Serve.consistency with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "obs: %s" m);
      total = 120
      && List.exists (fun o -> o.Shard.crashes > 0) cell.Serve.shards)

(* ------------------------------------------------------------------ *)
(* Elastic serving: topology naming, config validation, the sweep
   grid, failover, resharding, and storm determinism. *)

let topology_names () =
  List.iter
    (fun (t, n) ->
      Alcotest.(check string) ("name of " ^ n) n (Topology.name t);
      match Topology.of_name n with
      | Ok t' -> Alcotest.(check bool) (n ^ " round-trips") true (t = t')
      | Error m -> Alcotest.failf "%s did not parse: %s" n m)
    [
      (Topology.static 1, "s1");
      (Topology.static 4, "s4");
      (Topology.replicated ~replicas:1 4, "s4r1");
      (Topology.replicated ~replicas:2 3, "s3r2");
      (Topology.with_reshard Topology.Split (Topology.static 4), "s4sp");
      ( Topology.with_reshard Topology.Merge
          (Topology.replicated ~replicas:1 4),
        "s4r1mg" );
    ];
  List.iter
    (fun bad ->
      match Topology.of_name bad with
      | Ok _ -> Alcotest.failf "%S parsed" bad
      | Error _ -> ())
    [ ""; "s"; "4"; "s0"; "sr1"; "s4r"; "s4xx"; "s4sp1"; "s1mg" ]

let config_validates_zipf () =
  List.iter
    (fun e ->
      match config ~zipf:e () with
      | _ -> Alcotest.failf "zipf %g accepted" e
      | exception Invalid_argument _ -> ())
    [ 0.0; -0.5; 1.0 ];
  (* Valid exponents still construct. *)
  ignore (config ~zipf:0.99 () : Config.t);
  ignore (config ~zipf:1.2 () : Config.t)

let sweep_default_grid () =
  let cells = Sweep.cells (Sweep.default ~workload:"kvcache50") in
  Alcotest.(check int) "8 cells" 8 (List.length cells);
  (* scheme -> topology -> batch order, and the historical labels. *)
  Alcotest.(check (list string))
    "labels in grid order"
    [
      "kvcache50/ido s1 b1"; "kvcache50/ido s1 b8";
      "kvcache50/ido s4 b1"; "kvcache50/ido s4 b8";
      "kvcache50/justdo s1 b1"; "kvcache50/justdo s1 b8";
      "kvcache50/justdo s4 b1"; "kvcache50/justdo s4 b8";
    ]
    (List.map Config.label cells)

(* Failover: a replicated cell under the planned single crash must
   serve the whole stream (zero dropped — the warm replica replays the
   unacknowledged tail) with every oracle and reconciliation clean. *)
let failover_gen =
  QCheck.Gen.(
    let* seed = int_range 0 10_000 in
    let* shards = int_range 1 4 in
    let* replicas = int_range 1 2 in
    let* batch = int_range 1 4 in
    let* scheme = oneofl [ Scheme.Ido; Scheme.Justdo ] in
    return (seed, shards, replicas, batch, scheme))

let failover_arb =
  QCheck.make failover_gen ~print:(fun (seed, shards, replicas, batch, scheme) ->
      Printf.sprintf "seed=%d shards=%d replicas=%d batch=%d scheme=%s" seed
        shards replicas batch (Scheme.name scheme))

let failover_absorbs_crash =
  QCheck.Test.make ~name:"failover serves everything: 0 dropped, oracles ok"
    ~count:10 failover_arb (fun (seed, shards, replicas, batch, scheme) ->
      let c =
        config ~workload:"queue" ~scheme ~seed ~shards ~replicas ~batch
          ~requests:120 ()
      in
      let cell = Serve.run_cell ~obs:true ~fault:(Fault.single_crash c) c in
      (match cell.Serve.oracle with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "oracle: %s" m);
      (match cell.Serve.consistency with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "obs: %s" m);
      if cell.Serve.stats.Lat.dropped <> 0 then
        QCheck.Test.fail_reportf "dropped %d with a warm replica"
          cell.Serve.stats.Lat.dropped;
      if cell.Serve.stats.Lat.served <> 120 then
        QCheck.Test.fail_reportf "served %d of 120"
          cell.Serve.stats.Lat.served;
      let failovers =
        List.fold_left (fun a o -> a + o.Shard.failovers) 0 cell.Serve.shards
      in
      if failovers <> 1 then
        QCheck.Test.fail_reportf "expected exactly 1 failover, got %d"
          failovers;
      cell.Serve.replayed > 0 && cell.Serve.max_stall_ns > 0)

(* Split: the hot group forks mid-stream; the whole stream is still
   served exactly once and both the warm parent and the split child
   pass their final-image oracles. *)
let split_preserves_stream () =
  List.iter
    (fun (scheme, batch) ->
      let c =
        config ~workload:"kvcache50" ~scheme ~seed:11 ~shards:4
          ~reshard:Topology.Split ~batch ~requests:300 ~zipf:0.99 ()
      in
      let cell = Serve.run_cell ~obs:true c in
      Alcotest.(check int) "served = requests" 300 cell.Serve.stats.Lat.served;
      Alcotest.(check int) "nothing dropped" 0 cell.Serve.stats.Lat.dropped;
      Alcotest.(check bool) "oracle ok" true (cell.Serve.oracle = Ok ());
      Alcotest.(check bool) "obs reconciles" true
        (cell.Serve.consistency = Ok ());
      Alcotest.(check bool) "some group split" true
        (List.exists (fun o -> o.Shard.split_off) cell.Serve.shards);
      (* The split pause is charged as a stall. *)
      Alcotest.(check bool) "migration stall recorded" true
        (cell.Serve.max_stall_ns > 0))
    [ (Scheme.Ido, 8); (Scheme.Justdo, 4) ]

(* Merge: the coldest group retires mid-stream onto the hottest's
   station; the cold image is validated at the handoff and the hot
   station serves both tails. *)
let merge_preserves_stream () =
  let c =
    config ~workload:"kvcache50" ~seed:11 ~shards:4 ~reshard:Topology.Merge
      ~batch:8 ~requests:300 ~zipf:0.99 ()
  in
  let cell = Serve.run_cell ~obs:true c in
  Alcotest.(check int) "served = requests" 300 cell.Serve.stats.Lat.served;
  Alcotest.(check int) "nothing dropped" 0 cell.Serve.stats.Lat.dropped;
  Alcotest.(check bool) "oracle ok" true (cell.Serve.oracle = Ok ());
  Alcotest.(check bool) "obs reconciles" true (cell.Serve.consistency = Ok ());
  Alcotest.(check bool) "some group merged away" true
    (List.exists (fun o -> o.Shard.merged_away) cell.Serve.shards)

(* Routing invariant under every elastic topology: each group's
   outcome only aggregates its own sub-stream, so per-group serves
   sum to the stream and no group exceeds its plan count. *)
let elastic_routing_invariant () =
  List.iter
    (fun reshard ->
      let c =
        config ~workload:"kvcache50" ~seed:3 ~shards:4 ~replicas:1 ?reshard
          ~batch:8 ~requests:250 ~zipf:0.99 ()
      in
      let module W = Ido_workloads.Workload in
      let key_range = (W.get "kvcache50").W.request.W.key_range in
      let plan = Gen.plan c ~key_range in
      let cell = Serve.run_cell ~obs:true ~fault:(Fault.single_crash c) c in
      List.iter
        (fun (o : Shard.outcome) ->
          Alcotest.(check int)
            (Printf.sprintf "group %d serves its whole sub-stream"
               o.Shard.group)
            (Gen.shard_count plan o.Shard.group)
            (o.Shard.served + o.Shard.dropped))
        cell.Serve.shards)
    [ None; Some Topology.Split; Some Topology.Merge ]

(* Storm cells must stay byte-identical across -j and --chunk — the
   cornerstone determinism invariant, now under correlated faults. *)
let storm_pooled_identical () =
  List.iter
    (fun (replicas, reshard) ->
      let c =
        config ~workload:"kvcache50" ~seed:5 ~shards:4 ~replicas ?reshard
          ~batch:8 ~requests:200 ~zipf:0.99 ()
      in
      let fault = Fault.storm c in
      let serial = Serve.run_cell ~obs:true ~fault c in
      let pooled =
        Ido_util.Pool.with_pool 4 (fun pool ->
            Serve.run_cell ~pool ~chunk:2 ~obs:true ~fault c)
      in
      Alcotest.(check string)
        (Printf.sprintf "storm cell identical at -j4 --chunk 2 (r%d)" replicas)
        (Report.cell_json serial) (Report.cell_json pooled))
    [ (0, None); (1, None); (1, Some Topology.Merge) ]

let fault_validate_rejects () =
  let c = config ~shards:2 () in
  match
    Fault.validate c
      (Fault.of_crash { Fault.shard = 5; at_request = 0; after_ns = 10 })
  with
  | () -> Alcotest.fail "out-of-range group accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Spec: JSON round-trip through the trace-header fragment. *)

let spec_roundtrip () =
  let s =
    Ido_harness.Spec.make ~seed:97 ~scheme:Scheme.Atlas ~workload:"hmap"
      ~threads:3 ~ops:250 ()
  in
  let line = "{" ^ Ido_harness.Spec.json_fields s ^ "}" in
  let s' = Ido_harness.Spec.of_json ~fail:(fun m -> Failure m) line in
  Alcotest.(check bool) "scheme" true (s'.Ido_harness.Spec.scheme = Scheme.Atlas);
  Alcotest.(check string) "workload" "hmap" s'.Ido_harness.Spec.workload;
  Alcotest.(check int) "seed" 97 s'.Ido_harness.Spec.seed;
  Alcotest.(check int) "threads" 3 s'.Ido_harness.Spec.threads;
  Alcotest.(check int) "ops" 250 s'.Ido_harness.Spec.ops;
  (* Re-emitting must reproduce the fragment byte for byte. *)
  Alcotest.(check string)
    "fragment stable"
    (Ido_harness.Spec.json_fields s)
    (Ido_harness.Spec.json_fields s')

let spec_bad_json () =
  let fail m = Failure m in
  (match
     Ido_harness.Spec.of_json ~fail
       {|{"scheme":"zeta","workload":"queue","seed":1,"threads":1,"ops":1}|}
   with
  | _ -> Alcotest.fail "unknown scheme accepted"
  | exception Failure _ -> ());
  match
    Ido_harness.Spec.of_json ~fail {|{"scheme":"ido","workload":"queue"}|}
  with
  | _ -> Alcotest.fail "missing field accepted"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Workload registry contract. *)

let registry_contract () =
  let module W = Ido_workloads.Workload in
  Alcotest.(check bool) "at least 8 entries" true (List.length W.all >= 8);
  List.iter
    (fun (w : W.t) ->
      Alcotest.(check bool)
        (w.W.name ^ " findable") true
        (W.find w.W.name <> None);
      Alcotest.(check bool)
        (w.W.name ^ " key_range positive") true
        (w.W.request.W.key_range > 0);
      let p = W.program w in
      Alcotest.(check bool)
        (w.W.name ^ " has request entry") true
        (List.mem_assoc "request" p.Ido_ir.Ir.funcs);
      Alcotest.(check bool)
        (w.W.name ^ " has init entry") true
        (List.mem_assoc "init" p.Ido_ir.Ir.funcs))
    W.all;
  Alcotest.(check bool) "unknown not found" true (W.find "nosuch" = None);
  match W.get "nosuch" with
  | _ -> Alcotest.fail "get on unknown name must raise"
  | exception Invalid_argument m ->
      Alcotest.(check bool)
        "message lists valid names" true
        (let contains s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         contains m "queue" && contains m "kvcache50")

let suites =
  [
    ( "serve-lat",
      [
        Alcotest.test_case "nearest-rank by hand (n=5)" `Quick percentile_hand;
        Alcotest.test_case "pK of 1..100 is K" `Quick percentile_hundred;
        Alcotest.test_case "of_latencies hand-computed" `Quick of_latencies_hand;
        Alcotest.test_case "of_latencies on empty" `Quick of_latencies_empty;
        qtest percentile_matches_spec;
      ] );
    ( "serve-sketch",
      [
        Alcotest.test_case "sketch edge cases (n=0, n=1)" `Quick sketch_edges;
        Alcotest.test_case "sketch exact below 128" `Quick sketch_exact_small;
        qtest sketch_within_bound;
        qtest sketch_merge_is_exact;
      ] );
    ( "serve-gen",
      [
        Alcotest.test_case "interarrival boundary draws" `Quick gap_boundaries;
        qtest gap_always_positive;
        Alcotest.test_case "plan conserves requests" `Quick
          plan_conserves_requests;
        Alcotest.test_case "keyless shards get nothing" `Quick
          plan_zero_mass_shards;
        Alcotest.test_case "stream invariants" `Quick stream_invariants;
        Alcotest.test_case "streaming = materialized reference" `Quick
          streaming_matches_materialized;
        Alcotest.test_case "stream deterministic" `Quick stream_deterministic;
        Alcotest.test_case "shard routing stable" `Quick shard_of_stable;
      ] );
    ( "serve-cell",
      [
        Alcotest.test_case "accounting adds up" `Quick cell_accounting;
        Alcotest.test_case "queue/ido s4: -j4 = serial" `Quick
          (pooled_cell_identical (config ()));
        Alcotest.test_case "kvcache50/justdo s2 b8 zipf: -j4 = serial" `Quick
          (pooled_cell_identical
             (config ~workload:"kvcache50" ~scheme:Scheme.Justdo ~shards:2
                ~batch:8 ~requests:150 ~zipf:0.99 ()));
        qtest crash_random_shard;
      ] );
    ( "serve-elastic",
      [
        Alcotest.test_case "topology names round-trip" `Quick topology_names;
        Alcotest.test_case "config rejects bad zipf" `Quick
          config_validates_zipf;
        Alcotest.test_case "default sweep grid" `Quick sweep_default_grid;
        qtest failover_absorbs_crash;
        Alcotest.test_case "split serves whole stream" `Quick
          split_preserves_stream;
        Alcotest.test_case "merge serves whole stream" `Quick
          merge_preserves_stream;
        Alcotest.test_case "routing invariant under faults" `Quick
          elastic_routing_invariant;
        Alcotest.test_case "storm cells: -j4 --chunk 2 = serial" `Quick
          storm_pooled_identical;
        Alcotest.test_case "fault validation rejects bad groups" `Quick
          fault_validate_rejects;
      ] );
    ( "serve-spec",
      [
        Alcotest.test_case "spec JSON round-trip" `Quick spec_roundtrip;
        Alcotest.test_case "spec rejects bad JSON" `Quick spec_bad_json;
        Alcotest.test_case "workload registry contract" `Quick
          registry_contract;
      ] );
  ]
