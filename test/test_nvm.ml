open Ido_util
open Ido_nvm

let qtest = QCheck_alcotest.to_alcotest

let mk ?(cache_lines = 64) ?(size = 4096) ?(seed = 1) () =
  Pmem.create ~cache_lines ~rng:(Rng.create seed) size

(* ------------------------------------------------------------------ *)

let test_load_store () =
  let pm = mk () in
  Pmem.store pm 10 42L;
  Alcotest.(check int64) "read back" 42L (Pmem.load pm 10);
  Alcotest.(check int64) "other word zero" 0L (Pmem.load pm 11)

let test_store_is_volatile_until_flushed () =
  let pm = mk () in
  Pmem.store pm 10 42L;
  Alcotest.(check bool) "dirty" true (Pmem.is_dirty pm 10);
  Alcotest.(check int64) "persistence domain stale" 0L (Pmem.persisted pm 10);
  Alcotest.(check bool) "clwb wrote back" true (Pmem.clwb pm 10);
  ignore (Pmem.fence pm);
  Alcotest.(check bool) "clean after flush" false (Pmem.is_dirty pm 10);
  Alcotest.(check int64) "durable" 42L (Pmem.persisted pm 10)

let test_crash_drops_unflushed () =
  let pm = mk () in
  Pmem.store pm 8 1L;
  ignore (Pmem.clwb pm 8);
  ignore (Pmem.fence pm);
  Pmem.store pm 8 2L;
  Pmem.store pm 400 3L;
  Pmem.crash pm;
  Alcotest.(check int64) "flushed value survives" 1L (Pmem.load pm 8);
  Alcotest.(check int64) "unflushed write lost" 0L (Pmem.load pm 400)

let test_line_granular_flush () =
  let pm = mk () in
  (* Words 16 and 17 share a cache line: flushing one persists both. *)
  Pmem.store pm 16 7L;
  Pmem.store pm 17 9L;
  ignore (Pmem.clwb pm 16);
  ignore (Pmem.fence pm);
  Pmem.crash pm;
  Alcotest.(check int64) "same line persisted together" 9L (Pmem.load pm 17)

let test_eviction_forces_writeback () =
  (* More dirty lines than capacity: older lines get written back in
     arbitrary order — the crash hazard of uninstrumented code. *)
  let pm = mk ~cache_lines:4 () in
  for i = 0 to 63 do
    Pmem.store pm (i * 8) (Int64.of_int i)
  done;
  let c = Pmem.counters pm in
  Alcotest.(check bool) "evictions happened" true (c.Pmem.evictions > 0);
  Alcotest.(check bool) "dirty lines bounded" true (Pmem.dirty_lines pm <= 5)

let test_eviction_order_arbitrary () =
  (* After a crash some evicted values survive while newer unflushed
     ones are lost, independent of program order. *)
  let pm = mk ~cache_lines:2 ~seed:3 () in
  for i = 0 to 31 do
    Pmem.store pm (i * 8) 1L
  done;
  Pmem.crash pm;
  let survived = ref 0 in
  for i = 0 to 31 do
    if Pmem.load pm (i * 8) = 1L then incr survived
  done;
  Alcotest.(check bool) "partial survival" true (!survived > 0 && !survived < 32)

let test_pending_flush_accounting () =
  let pm = mk () in
  Pmem.store pm 0 1L;
  Pmem.store pm 64 1L;
  ignore (Pmem.clwb pm 0);
  ignore (Pmem.clwb pm 64);
  Alcotest.(check int) "two pending" 2 (Pmem.pending_flushes pm);
  let c = Pmem.counters pm in
  Alcotest.(check int) "two write-backs counted" 2 c.Pmem.writebacks;
  Alcotest.(check int) "fence returns pending" 2 (Pmem.fence pm);
  Alcotest.(check int) "reset" 0 (Pmem.pending_flushes pm)

let test_clwb_clean_line_noop () =
  let pm = mk () in
  Alcotest.(check bool) "no write-back" false (Pmem.clwb pm 0);
  Alcotest.(check int) "nothing pending" 0 (Pmem.pending_flushes pm);
  let c = Pmem.counters pm in
  Alcotest.(check int) "issue counted" 1 c.Pmem.clwbs;
  Alcotest.(check int) "write-back not counted" 0 c.Pmem.writebacks

let test_poke_bypasses_cache () =
  let pm = mk () in
  Pmem.store pm 24 5L;
  Pmem.poke pm 24 9L;
  Alcotest.(check int64) "visible" 9L (Pmem.load pm 24);
  Alcotest.(check int64) "durable immediately" 9L (Pmem.persisted pm 24)

let test_flush_all () =
  let pm = mk () in
  for i = 0 to 99 do
    Pmem.store pm i (Int64.of_int i)
  done;
  Pmem.flush_all pm;
  Pmem.crash pm;
  for i = 0 to 99 do
    Alcotest.(check int64) "all durable" (Int64.of_int i) (Pmem.load pm i)
  done

let test_flush_all_dirty_index_order () =
  (* flush_all persists lines in dirty-index order (first store first),
     never in hash-bucket order: the order dirty_linenos reports is the
     order the write-backs happen in, so it must track first-store
     order and survive re-stores to already-dirty lines. *)
  let pm = mk ~size:8192 () in
  let lines = [ 40; 3; 17; 29; 5; 61 ] in
  List.iteri
    (fun i l -> Pmem.store pm (l * Pmem.words_per_line) (Int64.of_int (i + 1)))
    lines;
  (* A second store to a dirty line must not reposition it. *)
  Pmem.store pm ((17 * Pmem.words_per_line) + 2) 99L;
  Alcotest.(check (list int))
    "dirty-index order = first-store order" lines (Pmem.dirty_linenos pm);
  Pmem.flush_all pm;
  Alcotest.(check (list int)) "flush_all drains the index" []
    (Pmem.dirty_linenos pm);
  Alcotest.(check int) "no dirty lines left" 0 (Pmem.dirty_lines pm);
  Pmem.crash pm;
  List.iteri
    (fun i l ->
      Alcotest.(check int64)
        "line durable" (Int64.of_int (i + 1))
        (Pmem.load pm (l * Pmem.words_per_line)))
    lines;
  Alcotest.(check int64)
    "re-store durable" 99L
    (Pmem.load pm ((17 * Pmem.words_per_line) + 2))

let test_reset_is_fresh () =
  (* reset must be indistinguishable from create: same RNG stream, a
     zeroed persistence domain, an empty overlay, zero counters. *)
  let pm = mk () in
  Pmem.store pm 10 42L;
  ignore (Pmem.clwb pm 10);
  ignore (Pmem.fence pm);
  Pmem.store pm 900 7L;
  Pmem.reset ~rng:(Rng.create 5) pm;
  Alcotest.(check int64) "persisted word zeroed" 0L (Pmem.persisted pm 10);
  Alcotest.(check int64) "cached word gone" 0L (Pmem.load pm 900);
  Alcotest.(check int) "overlay empty" 0 (Pmem.dirty_lines pm);
  Alcotest.(check int) "nothing pending" 0 (Pmem.pending_flushes pm);
  let c = Pmem.counters pm in
  Alcotest.(check int) "stores zeroed" 0 c.Pmem.stores;
  Alcotest.(check int) "clwbs zeroed" 0 c.Pmem.clwbs;
  (* Same seed, same eviction choices: a reset memory replays the
     exact pseudo-random eviction order of a fresh one. *)
  let fill pm =
    for i = 0 to 63 do
      Pmem.store pm (i * 8) 1L
    done;
    Pmem.crash pm;
    List.init 64 (fun i -> Pmem.load pm (i * 8))
  in
  let fresh = fill (Pmem.create ~cache_lines:4 ~rng:(Rng.create 5) 4096) in
  let again =
    let pm2 = mk ~cache_lines:4 ~seed:9 () in
    Pmem.store pm2 100 3L;
    Pmem.reset ~rng:(Rng.create 5) pm2;
    fill pm2
  in
  Alcotest.(check (list int64)) "reset replays create's evictions" fresh again

let test_bounds () =
  let pm = mk ~size:128 () in
  Alcotest.check_raises "oob"
    (Invalid_argument "Pmem: address 128 out of bounds") (fun () ->
      ignore (Pmem.load pm 128));
  Alcotest.check_raises "negative"
    (Invalid_argument "Pmem: address -1 out of bounds") (fun () ->
      Pmem.store pm (-1) 0L)

let prop_flushed_survives_crash =
  QCheck.Test.make ~name:"flushed words always survive a crash" ~count:50
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 40) (int_bound 500)))
    (fun (seed, addrs) ->
      let pm = mk ~cache_lines:8 ~seed:(seed + 1) () in
      List.iteri (fun i a -> Pmem.store pm a (Int64.of_int (i + 1))) addrs;
      (* Flush a subset explicitly. *)
      let flushed = List.filteri (fun i _ -> i mod 2 = 0) addrs in
      List.iter (fun a -> ignore (Pmem.clwb pm a)) flushed;
      ignore (Pmem.fence pm);
      (* Capture current values of the flushed addresses (a later
         duplicate store to the same line may still be cached). *)
      let expect = List.map (fun a -> (a, Pmem.persisted pm a)) flushed in
      Pmem.crash pm;
      List.for_all (fun (a, v) -> Pmem.load pm a = v) expect)

let prop_snapshot_matches_persisted =
  QCheck.Test.make ~name:"snapshot equals persistence domain" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let pm = mk ~seed:(seed + 2) ~size:256 () in
      for i = 0 to 255 do
        Pmem.store pm i (Int64.of_int i);
        if i mod 3 = 0 then ignore (Pmem.clwb pm i)
      done;
      ignore (Pmem.fence pm);
      let snap = Pmem.snapshot_persistent pm in
      Array.to_list snap
      |> List.mapi (fun i v -> Pmem.persisted pm i = v)
      |> List.for_all (fun b -> b))

(* ------------------------------------------------------------------ *)
(* Vmem *)

let test_vmem () =
  let vm = Vmem.create () in
  Vmem.store vm 5 42L;
  Alcotest.(check int64) "read" 42L (Vmem.load vm 5);
  Alcotest.(check int64) "unwritten" 0L (Vmem.load vm 100000);
  let a = Vmem.alloc vm 10 in
  let b = Vmem.alloc vm 10 in
  Alcotest.(check bool) "disjoint" true (b >= a + 10);
  Alcotest.(check bool) "size grows" true (Vmem.size vm >= b + 10)

let test_vmem_grows () =
  let vm = Vmem.create ~initial:4 () in
  Vmem.store vm 1000 1L;
  Alcotest.(check int64) "grown" 1L (Vmem.load vm 1000)

let suites =
  [
    ( "nvm.pmem",
      [
        Alcotest.test_case "load/store" `Quick test_load_store;
        Alcotest.test_case "volatile until flushed" `Quick
          test_store_is_volatile_until_flushed;
        Alcotest.test_case "crash drops unflushed" `Quick test_crash_drops_unflushed;
        Alcotest.test_case "line-granular flush" `Quick test_line_granular_flush;
        Alcotest.test_case "eviction writeback" `Quick test_eviction_forces_writeback;
        Alcotest.test_case "arbitrary eviction order" `Quick
          test_eviction_order_arbitrary;
        Alcotest.test_case "pending accounting" `Quick test_pending_flush_accounting;
        Alcotest.test_case "clwb clean noop" `Quick test_clwb_clean_line_noop;
        Alcotest.test_case "poke" `Quick test_poke_bypasses_cache;
        Alcotest.test_case "flush_all" `Quick test_flush_all;
        Alcotest.test_case "flush_all order = dirty index" `Quick
          test_flush_all_dirty_index_order;
        Alcotest.test_case "reset = fresh create" `Quick test_reset_is_fresh;
        Alcotest.test_case "bounds" `Quick test_bounds;
        qtest prop_flushed_survives_crash;
        qtest prop_snapshot_matches_persisted;
      ] );
    ( "nvm.vmem",
      [
        Alcotest.test_case "basic" `Quick test_vmem;
        Alcotest.test_case "grows" `Quick test_vmem_grows;
      ] );
  ]
