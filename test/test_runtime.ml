open Ido_util
open Ido_nvm
open Ido_region
open Ido_runtime

let qtest = QCheck_alcotest.to_alcotest

let mk () =
  let pm = Pmem.create ~rng:(Rng.create 1) (1 lsl 18) in
  let region = Region.create pm in
  let w = Pwriter.create pm Latency.default in
  (pm, region, w)

(* ------------------------------------------------------------------ *)
(* Pwriter cost accounting *)

let test_pwriter_costs () =
  let pm, _, _ = mk () in
  let lat = Latency.default in
  let w = Pwriter.create pm lat in
  Pwriter.store w 0 1L;
  Alcotest.(check int) "store cost" lat.Latency.mem (Pwriter.take_cost w);
  Pwriter.clwb w 0;
  Alcotest.(check int) "clwb issue" lat.Latency.clwb_issue (Pwriter.take_cost w);
  Alcotest.(check int) "pending" 1 (Pwriter.pending w);
  Pwriter.fence w;
  Alcotest.(check int) "fence with one pending"
    (lat.Latency.fence_base + lat.Latency.persist_wait)
    (Pwriter.take_cost w);
  Pwriter.fence w;
  Alcotest.(check int) "empty fence" lat.Latency.fence_base (Pwriter.take_cost w)

let test_pwriter_coalescing () =
  let pm, _, _ = mk () in
  let w = Pwriter.create pm Latency.default in
  (* Eight dirty words in one line: a single write-back (Sec. IV-B). *)
  List.iter (fun a -> Pwriter.store w a 1L) [ 64; 65; 66; 67; 68; 69; 70; 71 ];
  Pwriter.clwb_lines w [ 64; 65; 66; 67; 68; 69; 70; 71 ];
  Alcotest.(check int) "one line" 1 (Pwriter.pending w);
  Pwriter.fence w;
  Pwriter.store w 64 2L;
  Pwriter.store w 128 2L;
  Pwriter.clwb_lines w [ 64; 128 ];
  Alcotest.(check int) "two lines" 2 (Pwriter.pending w)

let test_pwriter_clean_clwb_free () =
  (* Regression (accounting reconciliation): a clwb that hits a clean
     line performs no write-back, so it must charge nothing and the
     following fence must cost fence_base only — previously the issue
     cost and the fence's drain cost were charged anyway. *)
  let pm, _, _ = mk () in
  let lat = Latency.default in
  let w = Pwriter.create pm lat in
  Pwriter.clwb w 0;
  Alcotest.(check int) "clean clwb free" 0 (Pwriter.take_cost w);
  Alcotest.(check int) "nothing pending" 0 (Pwriter.pending w);
  Pwriter.fence w;
  Alcotest.(check int) "fence at base cost" lat.Latency.fence_base
    (Pwriter.take_cost w);
  (* A duplicate clwb of an already-written-back line is also free. *)
  Pwriter.store w 0 1L;
  ignore (Pwriter.take_cost w);
  Pwriter.clwb w 0;
  Pwriter.clwb w 0;
  Alcotest.(check int) "one pending, not two" 1 (Pwriter.pending w);
  Alcotest.(check int) "one issue charged" lat.Latency.clwb_issue
    (Pwriter.take_cost w);
  Pwriter.fence w;
  Alcotest.(check int) "fence drains one"
    (Latency.fence_cost lat ~pending:1)
    (Pwriter.take_cost w)

let test_pwriter_fences_independent () =
  let pm, _, _ = mk () in
  let w1 = Pwriter.create pm Latency.default in
  let w2 = Pwriter.create pm Latency.default in
  Pwriter.store w1 0 1L;
  Pwriter.clwb w1 0;
  (* w2's fence must not pay for w1's pending write-back. *)
  ignore (Pwriter.take_cost w2);
  Pwriter.fence w2;
  Alcotest.(check int) "other writer unaffected"
    Latency.default.Latency.fence_base (Pwriter.take_cost w2)

let test_latency_knob () =
  let l = Latency.with_nvm_extra Latency.default 500 in
  Alcotest.(check int) "knob set" 500 l.Latency.nvm_extra;
  Alcotest.(check int) "baseline zero" 0 Latency.default.Latency.nvm_extra

(* ------------------------------------------------------------------ *)
(* iDO log *)

let test_ido_log_pc_epoch () =
  let pm, region, w = mk () in
  let node = Ido_log.create w region ~tid:3 ~nregs:8 in
  Alcotest.(check int) "tid" 3 (Lognode.tid pm node);
  Alcotest.(check int) "kind" Lognode.kind_ido (Lognode.kind pm node);
  Alcotest.(check int) "pc initially none" 0 (Ido_log.recovery_pc pm node);
  Ido_log.set_recovery_pc w node ~epoch:5 1234;
  Pwriter.fence w;
  Alcotest.(check int) "pc" 1234 (Ido_log.recovery_pc pm node);
  Alcotest.(check int) "epoch" 5 (Ido_log.recovery_epoch pm node);
  Ido_log.set_recovery_pc w node ~epoch:9 0;
  Alcotest.(check int) "cleared" 0 (Ido_log.recovery_pc pm node)

let prop_pc_epoch_roundtrip =
  QCheck.Test.make ~name:"pc/epoch word packing roundtrips" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound Ido_log.epoch_mask))
    (fun (pc, epoch) ->
      QCheck.assume (pc > 0);
      let pm, region, w = mk () in
      let node = Ido_log.create w region ~tid:0 ~nregs:2 in
      Ido_log.set_recovery_pc w node ~epoch pc;
      Ido_log.recovery_pc pm node = pc && Ido_log.recovery_epoch pm node = epoch)

let test_ido_log_regs () =
  let pm, region, w = mk () in
  let node = Ido_log.create w region ~tid:0 ~nregs:16 in
  Ido_log.write_out_regs w node [ (2, 22L); (7, 77L); (15, 155L) ];
  Pwriter.fence w;
  Alcotest.(check int64) "slot 2" 22L (Ido_log.read_reg pm node 2);
  Alcotest.(check int64) "slot 7" 77L (Ido_log.read_reg pm node 7);
  let all = Ido_log.read_all_regs pm node in
  Alcotest.(check int) "sized by nregs" 16 (Array.length all);
  Alcotest.(check int64) "slot 15 via array" 155L all.(15)

let test_ido_log_lock_array () =
  let pm, region, w = mk () in
  let node = Ido_log.create w region ~tid:0 ~nregs:4 in
  Ido_log.record_acquire w node ~holder:1000 ~epoch:1;
  Ido_log.record_acquire w node ~holder:2000 ~epoch:2;
  Alcotest.(check (list (pair int int))) "both held"
    [ (1000, 1); (2000, 2) ]
    (Ido_log.held_locks pm node);
  Ido_log.record_release w node ~holder:1000;
  Alcotest.(check (list (pair int int))) "one left" [ (2000, 2) ]
    (Ido_log.held_locks pm node);
  (* Releasing an absent holder must be a harmless no-op. *)
  Ido_log.record_release w node ~holder:1000;
  Alcotest.(check int) "still one" 1 (List.length (Ido_log.held_locks pm node))

let test_ido_log_sim_stack () =
  let pm, region, w = mk () in
  let node = Ido_log.create w region ~tid:0 ~nregs:4 in
  Ido_log.set_sim_stack pm node ~base:512 ~sp:17;
  Alcotest.(check (pair int int)) "roundtrip" (512, 17) (Ido_log.sim_stack pm node)

(* ------------------------------------------------------------------ *)
(* JUSTDO log *)

let test_justdo_log () =
  let pm, region, w = mk () in
  let node = Justdo_log.create w region ~tid:1 ~nregs:4 in
  Alcotest.(check bool) "not armed" false (Justdo_log.armed pm node);
  Justdo_log.log_store w node ~pc:77 ~addr:4000 ~value:42L;
  Alcotest.(check bool) "armed" true (Justdo_log.armed pm node);
  Alcotest.(check (triple int int int64)) "entry" (77, 4000, 42L)
    (let a, b, c = Justdo_log.entry pm node in
     (a, b, c));
  Justdo_log.snapshot_regs pm node [| 1L; 2L; 3L; 4L |];
  Alcotest.(check int64) "snapshot" 3L (Justdo_log.read_all_regs pm node).(2);
  Justdo_log.clear w node;
  Alcotest.(check bool) "cleared" false (Justdo_log.armed pm node)

let test_justdo_log_survives_crash () =
  let pm, region, w = mk () in
  let node = Justdo_log.create w region ~tid:1 ~nregs:2 in
  Justdo_log.log_store w node ~pc:5 ~addr:100 ~value:9L;
  Pmem.crash pm;
  Alcotest.(check bool) "armed after crash" true (Justdo_log.armed pm node)

let test_justdo_two_fence_locks () =
  let pm, region, w = mk () in
  let node = Justdo_log.create w region ~tid:1 ~nregs:2 in
  let before = (Pmem.counters pm).Pmem.fences in
  Justdo_log.record_acquire w node ~holder:123;
  let after = (Pmem.counters pm).Pmem.fences in
  Alcotest.(check int) "two fences per acquire (intention + ownership)" 2
    (after - before);
  Alcotest.(check (list int)) "held" [ 123 ] (Justdo_log.held_locks pm node);
  Justdo_log.record_release w node ~holder:123;
  Alcotest.(check (list int)) "released" [] (Justdo_log.held_locks pm node)

(* ------------------------------------------------------------------ *)
(* UNDO log *)

let test_undo_log_roundtrip () =
  let pm, region, w = mk () in
  let node = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:0 ~cap_records:64 in
  Undo_log.append w node Undo_log.Fase_begin ~a:0L ~b:0L ~seq:1;
  Undo_log.log_write w node ~addr:500 ~old:7L ~seq:2;
  Undo_log.append w node Undo_log.Fase_end ~a:0L ~b:0L ~seq:3;
  let records = Undo_log.records pm node in
  Alcotest.(check int) "three records" 3 (List.length records);
  (match records with
  | [ b0; wr; e0 ] ->
      Alcotest.(check bool) "begin" true (b0.Undo_log.tag = Undo_log.Fase_begin);
      Alcotest.(check int64) "write addr" 500L wr.Undo_log.a;
      Alcotest.(check int64) "write old" 7L wr.Undo_log.b;
      Alcotest.(check int) "seq" 2 wr.Undo_log.seq;
      Alcotest.(check bool) "end" true (e0.Undo_log.tag = Undo_log.Fase_end)
  | _ -> Alcotest.fail "bad records");
  Alcotest.(check bool) "not in fase" false (Undo_log.in_fase pm node);
  Alcotest.(check int) "total" 3 (Undo_log.total pm node);
  Undo_log.reset w node;
  Alcotest.(check int) "reset keeps total count at zero" 0
    (List.length (Undo_log.records pm node))

let test_undo_log_open_fase () =
  let pm, region, w = mk () in
  let node = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:0 ~cap_records:64 in
  Undo_log.append w node Undo_log.Fase_begin ~a:0L ~b:0L ~seq:1;
  Undo_log.log_write w node ~addr:1 ~old:0L ~seq:2;
  Alcotest.(check bool) "open fase detected" true (Undo_log.in_fase pm node)

let test_undo_log_wrap () =
  let pm, region, w = mk () in
  let node = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:0 ~cap_records:8 in
  for i = 1 to 20 do
    Undo_log.log_write w node ~addr:i ~old:(Int64.of_int i) ~seq:i
  done;
  let records = Undo_log.records pm node in
  Alcotest.(check int) "ring keeps the cap" 8 (List.length records);
  Alcotest.(check int) "total counts everything" 20 (Undo_log.total pm node);
  (* The survivors are the newest, in chronological order. *)
  Alcotest.(check (list int)) "newest 8"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun r -> r.Undo_log.seq) records)

let test_undo_log_metadata_durable () =
  (* The regression behind Atlas's objstore bug: head and total must
     both persist with each append, even when they straddle lines. *)
  let pm, region, w = mk () in
  let node = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:0 ~cap_records:64 in
  Undo_log.append w node Undo_log.Fase_begin ~a:0L ~b:0L ~seq:1;
  for i = 2 to 11 do
    Undo_log.log_write w node ~addr:i ~old:1L ~seq:i
  done;
  Pmem.crash pm;
  Alcotest.(check int) "all records visible after crash" 11
    (List.length (Undo_log.records pm node));
  Alcotest.(check bool) "open fase visible after crash" true
    (Undo_log.in_fase pm node)

let prop_undo_records_roundtrip =
  QCheck.Test.make ~name:"undo records roundtrip in order" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_bound 1000) (int_bound 9)))
    (fun writes ->
      let pm, region, w = mk () in
      let node =
        Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:0 ~cap_records:64
      in
      List.iteri
        (fun i (addr, old) ->
          Undo_log.log_write w node ~addr ~old:(Int64.of_int old) ~seq:i)
        writes;
      let got =
        List.map
          (fun r -> (Int64.to_int r.Undo_log.a, Int64.to_int r.Undo_log.b))
          (Undo_log.records pm node)
      in
      got = writes)

(* ------------------------------------------------------------------ *)
(* Atlas recovery: rollback with happens-before propagation *)

let test_atlas_rollback_propagates () =
  let pm, region, w = mk () in
  (* Thread A: begins a FASE, writes addr 100 (old 0), releases lock 9
     mid-FASE (hand-over-hand), keeps running -> crash (no Fase_end).
     Thread B: acquires lock 9 after A's release, writes addr 200
     (old 0), completes.  Atlas must roll back B too. *)
  let a = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:0 ~cap_records:64 in
  let b = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:1 ~cap_records:64 in
  Undo_log.append w a Undo_log.Fase_begin ~a:0L ~b:0L ~seq:1;
  Undo_log.log_write w a ~addr:100 ~old:0L ~seq:2;
  Pwriter.store w 100 111L;
  Undo_log.append w a Undo_log.Release ~a:9L ~b:0L ~seq:3;
  Undo_log.append w b Undo_log.Fase_begin ~a:0L ~b:0L ~seq:4;
  Undo_log.append w b Undo_log.Acquire ~a:9L ~b:0L ~seq:5;
  Undo_log.log_write w b ~addr:200 ~old:0L ~seq:6;
  Pwriter.store w 200 222L;
  Undo_log.append w b Undo_log.Fase_end ~a:0L ~b:0L ~seq:7;
  let st = Atlas_recovery.recover w region in
  Alcotest.(check int) "both FASEs rolled back" 2 st.Atlas_recovery.fases_rolled_back;
  Alcotest.(check int) "both writes undone" 2 st.Atlas_recovery.writes_undone;
  Alcotest.(check int64) "A's write reverted" 0L (Pmem.load pm 100);
  Alcotest.(check int64) "B's write reverted" 0L (Pmem.load pm 200)

let test_atlas_independent_fase_survives () =
  let pm, region, w = mk () in
  let a = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:0 ~cap_records:64 in
  let b = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:1 ~cap_records:64 in
  (* A crashes mid-FASE on lock 9; B completed on unrelated lock 8. *)
  Undo_log.append w a Undo_log.Fase_begin ~a:0L ~b:0L ~seq:1;
  Undo_log.append w a Undo_log.Acquire ~a:9L ~b:0L ~seq:2;
  Undo_log.log_write w a ~addr:100 ~old:0L ~seq:3;
  Pwriter.store w 100 111L;
  Undo_log.append w b Undo_log.Fase_begin ~a:0L ~b:0L ~seq:4;
  Undo_log.append w b Undo_log.Acquire ~a:8L ~b:0L ~seq:5;
  Undo_log.log_write w b ~addr:200 ~old:0L ~seq:6;
  Pwriter.store w 200 222L;
  Undo_log.append w b Undo_log.Release ~a:8L ~b:0L ~seq:7;
  Undo_log.append w b Undo_log.Fase_end ~a:0L ~b:0L ~seq:8;
  let st = Atlas_recovery.recover w region in
  Alcotest.(check int) "only A rolled back" 1 st.Atlas_recovery.fases_rolled_back;
  Alcotest.(check int64) "A reverted" 0L (Pmem.load pm 100);
  Alcotest.(check int64) "B preserved" 222L (Pmem.load pm 200)

let test_atlas_undo_order () =
  (* Two writes to the same address in one interrupted FASE must be
     undone newest-first, restoring the oldest value. *)
  let pm, region, w = mk () in
  let a = Undo_log.create w region ~kind:Lognode.kind_atlas ~tid:0 ~cap_records:64 in
  Undo_log.append w a Undo_log.Fase_begin ~a:0L ~b:0L ~seq:1;
  Undo_log.log_write w a ~addr:100 ~old:5L ~seq:2;
  Pwriter.store w 100 10L;
  Undo_log.log_write w a ~addr:100 ~old:10L ~seq:3;
  Pwriter.store w 100 20L;
  ignore (Atlas_recovery.recover w region);
  Alcotest.(check int64) "original value restored" 5L (Pmem.load pm 100)

(* ------------------------------------------------------------------ *)
(* REDO log *)

let test_redo_log () =
  let pm, region, w = mk () in
  let node = Redo_log.create w region ~tid:0 ~cap_entries:16 in
  Redo_log.begin_txn w node;
  Alcotest.(check bool) "filling" true (Redo_log.status pm node = Redo_log.Filling);
  Redo_log.append w node ~addr:100 ~value:1L;
  Redo_log.append w node ~addr:101 ~value:2L;
  Alcotest.(check int) "count" 2 (Redo_log.count pm node);
  Alcotest.(check (pair int int64)) "entry" (101, 2L) (Redo_log.entry pm node 1);
  Redo_log.persist_entries w node;
  Pwriter.fence w;
  Redo_log.persist_status w node Redo_log.Committed;
  Redo_log.apply w node;
  Alcotest.(check int64) "applied" 1L (Pmem.load pm 100);
  Alcotest.(check int64) "applied 2" 2L (Pmem.load pm 101);
  Alcotest.(check int) "commits counted" 1 (Redo_log.total_commits pm node);
  Redo_log.persist_status w node Redo_log.Idle;
  Alcotest.(check bool) "idle" true (Redo_log.status pm node = Redo_log.Idle)

let test_redo_overflow () =
  let _, region, w = mk () in
  let node = Redo_log.create w region ~tid:0 ~cap_entries:2 in
  Redo_log.begin_txn w node;
  Redo_log.append w node ~addr:1 ~value:1L;
  Redo_log.append w node ~addr:2 ~value:1L;
  Alcotest.check_raises "overflow"
    (Lognode.Log_overflow
       { Lognode.scheme = "mnemosyne"; tid = 0; log = "write_set"; capacity = 2 })
    (fun () -> Redo_log.append w node ~addr:3 ~value:1L)

(* ------------------------------------------------------------------ *)
(* Page log *)

let test_page_log_cow () =
  let pm, region, w = mk () in
  let node = Page_log.create w region ~tid:0 ~cap_pages:8 in
  (* Prepare master data on one page. *)
  let page = 100 in
  let base = page * Page_log.page_words in
  Pmem.poke pm base 7L;
  Pmem.poke pm (base + 1) 8L;
  Page_log.begin_fase w node ~seq:1;
  let i = Page_log.log_page w node ~page in
  Alcotest.(check (option int)) "find" (Some i) (Page_log.find_page pm node page);
  (* The copy carries the master's contents. *)
  Alcotest.(check int64) "copy word 0" 7L
    (Pmem.load pm (Page_log.copy_word_addr node i ~off:0));
  (* Write through the copy; master untouched until commit. *)
  Pwriter.store w (Page_log.copy_word_addr node i ~off:1) 99L;
  Page_log.mark_dirty w node i ~off:1;
  Alcotest.(check int64) "master clean" 8L (Pmem.load pm (base + 1));
  Page_log.commit w node;
  Alcotest.(check int64) "dirty word applied" 99L (Pmem.load pm (base + 1));
  Alcotest.(check int64) "clean word untouched" 7L (Pmem.load pm base);
  Alcotest.(check bool) "idle after commit" false (Page_log.active pm node)

let test_page_log_discard () =
  let pm, region, w = mk () in
  let node = Page_log.create w region ~tid:0 ~cap_pages:4 in
  let page = 50 in
  let base = page * Page_log.page_words in
  Pmem.poke pm base 5L;
  Page_log.begin_fase w node ~seq:1;
  let i = Page_log.log_page w node ~page in
  Pwriter.store w (Page_log.copy_word_addr node i ~off:0) 9L;
  Page_log.mark_dirty w node i ~off:0;
  Alcotest.(check bool) "active" true (Page_log.active pm node);
  Page_log.discard w node;
  Alcotest.(check int64) "master untouched" 5L (Pmem.load pm base);
  Alcotest.(check bool) "inactive" false (Page_log.active pm node)

let test_page_log_diff_only () =
  (* Only dirty words are applied: a concurrent thread's committed
     values on the same page are not clobbered by stale copy words. *)
  let pm, region, w = mk () in
  let node = Page_log.create w region ~tid:0 ~cap_pages:4 in
  let page = 60 in
  let base = page * Page_log.page_words in
  Page_log.begin_fase w node ~seq:1;
  let i = Page_log.log_page w node ~page in
  (* Someone else updates word 2 of the master after our copy. *)
  Pmem.poke pm (base + 2) 777L;
  Pwriter.store w (Page_log.copy_word_addr node i ~off:3) 42L;
  Page_log.mark_dirty w node i ~off:3;
  Page_log.commit w node;
  Alcotest.(check int64) "their word preserved" 777L (Pmem.load pm (base + 2));
  Alcotest.(check int64) "our word applied" 42L (Pmem.load pm (base + 3))

(* ------------------------------------------------------------------ *)
(* Scheme metadata *)

let test_scheme_names () =
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        "name roundtrip"
        (Some (Scheme.name s))
        (Option.map Scheme.name (Scheme.of_name (Scheme.name s))))
    Scheme.all;
  Alcotest.(check bool) "unknown" true (Scheme.of_name "nope" = None);
  List.iter
    (fun s ->
      Alcotest.(check int) "table2 arity"
        (List.length Scheme.table2_header)
        (List.length (Scheme.table2_row s)))
    Scheme.all

let suites =
  [
    ( "runtime.pwriter",
      [
        Alcotest.test_case "costs" `Quick test_pwriter_costs;
        Alcotest.test_case "coalescing" `Quick test_pwriter_coalescing;
        Alcotest.test_case "clean clwb free" `Quick test_pwriter_clean_clwb_free;
        Alcotest.test_case "independent fences" `Quick test_pwriter_fences_independent;
        Alcotest.test_case "latency knob" `Quick test_latency_knob;
      ] );
    ( "runtime.ido_log",
      [
        Alcotest.test_case "pc/epoch" `Quick test_ido_log_pc_epoch;
        qtest prop_pc_epoch_roundtrip;
        Alcotest.test_case "intRF" `Quick test_ido_log_regs;
        Alcotest.test_case "lock array" `Quick test_ido_log_lock_array;
        Alcotest.test_case "sim stack" `Quick test_ido_log_sim_stack;
      ] );
    ( "runtime.justdo_log",
      [
        Alcotest.test_case "entry lifecycle" `Quick test_justdo_log;
        Alcotest.test_case "survives crash" `Quick test_justdo_log_survives_crash;
        Alcotest.test_case "two-fence locks" `Quick test_justdo_two_fence_locks;
      ] );
    ( "runtime.undo_log",
      [
        Alcotest.test_case "roundtrip" `Quick test_undo_log_roundtrip;
        Alcotest.test_case "open fase" `Quick test_undo_log_open_fase;
        Alcotest.test_case "ring wrap" `Quick test_undo_log_wrap;
        Alcotest.test_case "metadata durable" `Quick test_undo_log_metadata_durable;
        qtest prop_undo_records_roundtrip;
      ] );
    ( "runtime.atlas_recovery",
      [
        Alcotest.test_case "dependence propagation" `Quick
          test_atlas_rollback_propagates;
        Alcotest.test_case "independent FASE survives" `Quick
          test_atlas_independent_fase_survives;
        Alcotest.test_case "undo order" `Quick test_atlas_undo_order;
      ] );
    ( "runtime.redo_log",
      [
        Alcotest.test_case "lifecycle" `Quick test_redo_log;
        Alcotest.test_case "overflow" `Quick test_redo_overflow;
      ] );
    ( "runtime.page_log",
      [
        Alcotest.test_case "copy-on-write" `Quick test_page_log_cow;
        Alcotest.test_case "discard" `Quick test_page_log_discard;
        Alcotest.test_case "diff-only commit" `Quick test_page_log_diff_only;
      ] );
    ( "runtime.scheme",
      [ Alcotest.test_case "metadata" `Quick test_scheme_names ] );
  ]
