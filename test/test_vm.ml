open Ido_ir
open Ido_runtime
module Vm = Ido_vm.Vm
module Wcommon = Ido_workloads.Wcommon

(* Shared toy program: two-cell atomic increment under a lock. *)
let counter_program () =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let cell = Wcommon.alloc_node b 8 [] in
  Wcommon.set_root b 0 (Ir.Reg cell);
  Builder.ret b None;
  let init = Builder.finish b in
  let b, ps = Builder.create ~name:"worker" ~nparams:1 in
  let n = List.nth ps 0 in
  let cell = Wcommon.get_root b 0 in
  let lockid = Builder.bin b Ir.Add (Ir.Reg cell) (Ir.Imm 4L) in
  Wcommon.for_loop b (Ir.Reg n) (fun _ ->
      Builder.lock b (Ir.Reg lockid);
      let c = Builder.load b Ir.Persistent (Ir.Reg cell) 0 in
      let c1 = Builder.bin b Ir.Add (Ir.Reg c) (Ir.Imm 1L) in
      Builder.store b Ir.Persistent (Ir.Reg cell) 0 (Ir.Reg c1);
      Builder.unlock b (Ir.Reg lockid);
      Wcommon.observe b (Ir.Imm 1L));
  Builder.ret b None;
  { Ir.funcs = [ ("init", init); ("worker", Builder.finish b) ] }

let boot ?(scheme = Scheme.Ido) ?(seed = 42) prog =
  let m = Vm.create { (Vm.config scheme) with seed } prog in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "init stuck");
  Vm.flush_all m;
  m

let counter_value m =
  let cell = Int64.to_int (Ido_region.Region.get_root (Vm.region m) 0) in
  Ido_nvm.Pmem.load (Vm.pmem m) cell

let test_mutual_exclusion_all_schemes () =
  (* Racy read-modify-write made atomic by the lock: the final count
     must be exact under every scheme. *)
  List.iter
    (fun scheme ->
      let m = boot ~scheme (counter_program ()) in
      for _ = 1 to 4 do
        ignore (Vm.spawn m ~fname:"worker" ~args:[ 250L ])
      done;
      (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "stuck");
      Alcotest.(check int64)
        (Scheme.name scheme ^ " exact count")
        1000L (counter_value m);
      Alcotest.(check int) "ops observed" 1000 (Vm.total_ops m))
    Scheme.all

let test_determinism () =
  let run () =
    let m = boot (counter_program ()) in
    ignore (Vm.spawn m ~fname:"worker" ~args:[ 100L ]);
    ignore (Vm.spawn m ~fname:"worker" ~args:[ 100L ]);
    ignore (Vm.run m);
    Vm.clock m
  in
  Alcotest.(check int) "same seed, same simulated time" (run ()) (run ())

let test_seed_changes_interleaving () =
  let run seed =
    let m = boot ~seed (counter_program ()) in
    ignore (Vm.spawn m ~fname:"worker" ~args:[ 100L ]);
    ignore (Vm.run m);
    Vm.clock m
  in
  (* Different seeds change eviction patterns; the clock may differ
     but correctness holds (checked above).  At minimum it must run. *)
  Alcotest.(check bool) "clocks positive" true (run 1 > 0 && run 2 > 0)

let test_run_until () =
  let m = boot (counter_program ()) in
  ignore (Vm.spawn m ~fname:"worker" ~args:[ 100_000L ]);
  (match Vm.run ~until:50_000 m with
  | `Until -> ()
  | _ -> Alcotest.fail "expected `Until");
  Alcotest.(check bool) "stopped near the bound" true (Vm.clock m < 70_000)

let test_max_steps () =
  let m = boot (counter_program ()) in
  ignore (Vm.spawn m ~fname:"worker" ~args:[ 100_000L ]);
  match Vm.run ~max_steps:100 m with
  | `Max_steps -> ()
  | _ -> Alcotest.fail "expected `Max_steps"

let test_deadlock_detection () =
  (* worker a: lock 1; lock 2 — worker b: lock 2; lock 1 with enough
     spinning between to guarantee the interleaving. *)
  let mk name first second =
    let b, _ = Builder.create ~name ~nparams:1 in
    Builder.lock b (Ir.Imm first);
    Builder.intr_void b Ir.Work [ Ir.Imm 10_000L ];
    Builder.lock b (Ir.Imm second);
    Builder.unlock b (Ir.Imm second);
    Builder.unlock b (Ir.Imm first);
    Builder.ret b None;
    Builder.finish b
  in
  let prog =
    { Ir.funcs = [ ("a", mk "a" 1L 2L); ("b", mk "b" 2L 1L) ] }
  in
  let m = Vm.create (Vm.config Scheme.Origin) prog in
  ignore (Vm.spawn m ~fname:"a" ~args:[ 0L ]);
  ignore (Vm.spawn m ~fname:"b" ~args:[ 0L ]);
  match Vm.run m with
  | `Deadlock -> ()
  | _ -> Alcotest.fail "expected deadlock"

let test_unlock_foreign_lock_rejected () =
  let b, _ = Builder.create ~name:"w" ~nparams:1 in
  Builder.lock b (Ir.Imm 5L);
  Builder.intr_void b Ir.Work [ Ir.Imm 10_000L ];
  Builder.unlock b (Ir.Imm 5L);
  Builder.ret b None;
  let w = Builder.finish b in
  let b, _ = Builder.create ~name:"rogue" ~nparams:1 in
  Builder.intr_void b Ir.Work [ Ir.Imm 100L ];
  (* Statically balanced (one acquire, one release) but the release
     targets a mutex held by the other thread: a runtime error. *)
  Builder.lock b (Ir.Imm 6L);
  Builder.unlock b (Ir.Imm 5L);
  Builder.ret b None;
  let rogue = Builder.finish b in
  let m = Vm.create (Vm.config Scheme.Origin) { Ir.funcs = [ ("w", w); ("rogue", rogue) ] } in
  ignore (Vm.spawn m ~fname:"w" ~args:[ 0L ]);
  ignore (Vm.spawn m ~fname:"rogue" ~args:[ 0L ]);
  match Vm.run m with
  | exception Vm.Vm_error _ -> ()
  | _ -> Alcotest.fail "expected Vm_error"

let test_stack_overflow_detected () =
  let b, _ = Builder.create ~name:"w" ~nparams:1 in
  ignore (Builder.alloca b 100_000);
  Builder.ret b None;
  let m = Vm.create (Vm.config Scheme.Origin) { Ir.funcs = [ ("w", Builder.finish b) ] } in
  ignore (Vm.spawn m ~fname:"w" ~args:[ 0L ]);
  match Vm.run m with
  | exception Vm.Vm_error _ -> ()
  | _ -> Alcotest.fail "expected stack overflow"

let test_calls_and_stack () =
  (* g(x) spills x to a stack slot and reloads it; f sums g(1)+g(2). *)
  let b, ps = Builder.create ~name:"g" ~nparams:1 in
  let x = List.nth ps 0 in
  let slot = Builder.alloca b 2 in
  Builder.store b Ir.Stack (Ir.Reg slot) 1 (Ir.Reg x);
  let y = Builder.load b Ir.Stack (Ir.Reg slot) 1 in
  let y2 = Builder.bin b Ir.Mul (Ir.Reg y) (Ir.Imm 10L) in
  Builder.ret b (Some (Ir.Reg y2));
  let g = Builder.finish b in
  let b, _ = Builder.create ~name:"w" ~nparams:1 in
  let a = Builder.call b "g" [ Ir.Imm 1L ] in
  let c = Builder.call b "g" [ Ir.Imm 2L ] in
  let s = Builder.bin b Ir.Add (Ir.Reg a) (Ir.Reg c) in
  Wcommon.observe b (Ir.Reg s);
  Builder.ret b None;
  let w = Builder.finish b in
  List.iter
    (fun scheme ->
      (* Stack lives in NVM for resumption schemes, DRAM otherwise. *)
      let m = Vm.create (Vm.config scheme) { Ir.funcs = [ ("g", g); ("w", w) ] } in
      let t = Vm.spawn m ~fname:"w" ~args:[ 0L ] in
      (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "stuck");
      Alcotest.(check (list int64)) "g(1)*10 + g(2)*10" [ 30L ] (Vm.observations t))
    Scheme.[ Ido; Atlas; Origin ]

let test_intrinsics () =
  let b, _ = Builder.create ~name:"w" ~nparams:1 in
  let tid = Builder.intr b Ir.Thread_id [] in
  Wcommon.observe b (Ir.Reg tid);
  let r = Builder.intr b Ir.Rand [ Ir.Imm 10L ] in
  let ok = Builder.bin b Ir.Lt (Ir.Reg r) (Ir.Imm 10L) in
  Wcommon.assert_nz b (Ir.Reg ok);
  let blk = Builder.intr b Ir.Nv_alloc [ Ir.Imm 4L ] in
  Builder.store b Ir.Persistent (Ir.Reg blk) 3 (Ir.Imm 9L);
  let v = Builder.load b Ir.Persistent (Ir.Reg blk) 3 in
  Wcommon.observe b (Ir.Reg v);
  Builder.intr_void b Ir.Nv_free [ Ir.Reg blk ];
  Builder.ret b None;
  let m = Vm.create (Vm.config Scheme.Origin) { Ir.funcs = [ ("w", Builder.finish b) ] } in
  let t = Vm.spawn m ~fname:"w" ~args:[ 0L ] in
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "stuck");
  Alcotest.(check (list int64)) "tid then stored value" [ 0L; 9L ] (Vm.observations t)

let test_work_advances_clock () =
  let b, _ = Builder.create ~name:"w" ~nparams:1 in
  Builder.intr_void b Ir.Work [ Ir.Imm 5_000L ];
  Builder.ret b None;
  let m = Vm.create (Vm.config Scheme.Origin) { Ir.funcs = [ ("w", Builder.finish b) ] } in
  ignore (Vm.spawn m ~fname:"w" ~args:[ 0L ]);
  ignore (Vm.run m);
  Alcotest.(check bool) "clock >= work" true (Vm.clock m >= 5_000)

let test_div_by_zero_is_zero () =
  let b, _ = Builder.create ~name:"w" ~nparams:1 in
  let d = Builder.bin b Ir.Div (Ir.Imm 7L) (Ir.Imm 0L) in
  let r = Builder.bin b Ir.Rem (Ir.Imm 7L) (Ir.Imm 0L) in
  Wcommon.observe b (Ir.Reg d);
  Wcommon.observe b (Ir.Reg r);
  Builder.ret b None;
  let m = Vm.create (Vm.config Scheme.Origin) { Ir.funcs = [ ("w", Builder.finish b) ] } in
  let t = Vm.spawn m ~fname:"w" ~args:[ 0L ] in
  ignore (Vm.run m);
  Alcotest.(check (list int64)) "defined as zero" [ 0L; 0L ] (Vm.observations t)

let test_assert_traps () =
  let b, _ = Builder.create ~name:"w" ~nparams:1 in
  Wcommon.assert_nz b (Ir.Imm 0L);
  Builder.ret b None;
  let m = Vm.create (Vm.config Scheme.Origin) { Ir.funcs = [ ("w", Builder.finish b) ] } in
  ignore (Vm.spawn m ~fname:"w" ~args:[ 0L ]);
  match Vm.run m with
  | exception Vm.Vm_error _ -> ()
  | _ -> Alcotest.fail "expected trap"

let test_lock_handoff_fifo () =
  (* Three contenders on one lock must all finish (no starvation). *)
  let m = boot (counter_program ()) in
  let ts = List.init 3 (fun _ -> Vm.spawn m ~fname:"worker" ~args:[ 50L ]) in
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "stuck");
  List.iter
    (fun t -> Alcotest.(check int) "each did its ops" 50 (Vm.thread_ops t))
    ts

let test_tracer () =
  let m = boot (counter_program ()) in
  let lines = ref [] in
  Ido_vm.Vm.set_tracer m (Some (fun l -> lines := l :: !lines));
  ignore (Vm.spawn m ~fname:"worker" ~args:[ 3L ]);
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "stuck");
  Ido_vm.Vm.set_tracer m None;
  let all = String.concat "\n" !lines in
  let has frag =
    let n = String.length frag in
    let rec go i =
      i + n <= String.length all && (String.sub all i n = frag || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "traced instructions" true (List.length !lines > 20);
  Alcotest.(check bool) "shows locks" true (has "lock r");
  Alcotest.(check bool) "shows hooks" true (has "!fase_enter");
  Alcotest.(check bool) "marks FASE membership" true (has "[FASE]")

let test_image_pc_roundtrip () =
  (* Every instruction slot of an instrumented program encodes to a
     dense pc and back. *)
  let prog =
    Ido_instrument.Instrument.instrument Scheme.Ido
      (Ido_workloads.Workload.named "olist")
  in
  let image = Ido_vm.Image.build prog in
  List.iter
    (fun (fname, (f : Ir.func)) ->
      Array.iteri
        (fun b (blk : Ir.block) ->
          for i = 0 to Array.length blk.Ir.instrs do
            let pos = { Ir.blk = b; idx = i } in
            let pc = Ido_vm.Image.pc_of_pos image ~fname pos in
            Alcotest.(check bool) "pc positive" true (pc > 0);
            let fname', pos' = Ido_vm.Image.pos_of_pc image pc in
            Alcotest.(check string) "func roundtrip" fname fname';
            Alcotest.(check bool) "pos roundtrip" true (pos = pos')
          done)
        f.Ir.blocks)
    prog.Ir.funcs;
  Alcotest.check_raises "pc 0 invalid"
    (Invalid_argument "Image.pos_of_pc: bad pc 0") (fun () ->
      ignore (Ido_vm.Image.pos_of_pc image 0))

let test_lock_array_overflow () =
  (* More simultaneously held locks than the lock_array has slots is a
     runtime error, not silent corruption. *)
  let b, _ = Builder.create ~name:"w" ~nparams:1 in
  for i = 1 to 17 do
    Builder.lock b (Ir.Imm (Int64.of_int i))
  done;
  for i = 17 downto 1 do
    Builder.unlock b (Ir.Imm (Int64.of_int i))
  done;
  Builder.ret b None;
  let m =
    Vm.create (Vm.config Scheme.Ido) { Ir.funcs = [ ("w", Builder.finish b) ] }
  in
  ignore (Vm.spawn m ~fname:"w" ~args:[ 0L ]);
  match Vm.run m with
  | exception Ido_runtime.Lognode.Log_overflow ov ->
      Alcotest.(check string) "scheme" "ido" ov.Ido_runtime.Lognode.scheme;
      Alcotest.(check string) "which log" "lock_array" ov.Ido_runtime.Lognode.log;
      Alcotest.(check int) "capacity" 16 ov.Ido_runtime.Lognode.capacity;
      Alcotest.(check int) "thread" 0 ov.Ido_runtime.Lognode.tid
  | _ -> Alcotest.fail "expected lock_array overflow"

let test_deep_nesting_within_capacity () =
  (* Sixteen nested locks is exactly the capacity: must work and
     recover. *)
  let b, _ = Builder.create ~name:"w16" ~nparams:1 in
  let cell = Wcommon.get_root b 0 in
  for i = 1 to 16 do
    Builder.lock b (Ir.Imm (Int64.of_int (1000 + i)))
  done;
  let c = Builder.load b Ir.Persistent (Ir.Reg cell) 0 in
  let c1 = Builder.bin b Ir.Add (Ir.Reg c) (Ir.Imm 1L) in
  Builder.store b Ir.Persistent (Ir.Reg cell) 0 (Ir.Reg c1);
  for i = 16 downto 1 do
    Builder.unlock b (Ir.Imm (Int64.of_int (1000 + i)))
  done;
  Builder.ret b None;
  let w = Builder.finish b in
  let prog = counter_program () in
  let prog = { Ir.funcs = prog.Ir.funcs @ [ ("w16", w) ] } in
  let m = Vm.create (Vm.config Scheme.Ido) prog in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  ignore (Vm.run m);
  Vm.flush_all m;
  ignore (Vm.spawn m ~fname:"w16" ~args:[ 0L ]);
  (match Vm.run m with `Idle -> () | _ -> Alcotest.fail "stuck");
  Alcotest.(check int64) "increment applied" 1L (counter_value m)

let suites =
  [
    ( "vm",
      [
        Alcotest.test_case "mutual exclusion (all schemes)" `Quick
          test_mutual_exclusion_all_schemes;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_interleaving;
        Alcotest.test_case "run until" `Quick test_run_until;
        Alcotest.test_case "max steps" `Quick test_max_steps;
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        Alcotest.test_case "foreign unlock rejected" `Quick
          test_unlock_foreign_lock_rejected;
        Alcotest.test_case "stack overflow" `Quick test_stack_overflow_detected;
        Alcotest.test_case "calls and stack slots" `Quick test_calls_and_stack;
        Alcotest.test_case "intrinsics" `Quick test_intrinsics;
        Alcotest.test_case "work cost" `Quick test_work_advances_clock;
        Alcotest.test_case "div by zero" `Quick test_div_by_zero_is_zero;
        Alcotest.test_case "assert traps" `Quick test_assert_traps;
        Alcotest.test_case "lock hand-off" `Quick test_lock_handoff_fifo;
        Alcotest.test_case "tracer" `Quick test_tracer;
        Alcotest.test_case "image pc roundtrip" `Quick test_image_pc_roundtrip;
        Alcotest.test_case "lock array overflow" `Quick test_lock_array_overflow;
        Alcotest.test_case "16 nested locks" `Quick test_deep_nesting_within_capacity;
      ] );
  ]
