(* The fuzzer (PR 6): coverage digests, input codec round-trips,
   shrinking properties (same diagnostic, monotone, bounded),
   campaign determinism across pool sizes, and corpus round-trips
   through both the NDJSON store and the PR-3 mutation corpus. *)

open Ido_runtime
module Cov = Ido_fuzz.Cov
module Input = Ido_fuzz.Input
module Exec = Ido_fuzz.Exec
module Shrink = Ido_fuzz.Shrink
module Corpus = Ido_fuzz.Corpus
module Fuzz = Ido_fuzz.Fuzz
module Mutate = Ido_lint.Mutate
module Engine = Ido_check.Engine

let qtest = QCheck_alcotest.to_alcotest

(* ---------- generators ---------- *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun k -> Input.Load (k mod Input.cells)) small_nat);
        ( 4,
          map2
            (fun k v -> Input.Store (k mod Input.cells, v mod 50))
            small_nat small_nat );
        (2, map (fun k -> Input.Addi (k mod 7)) small_nat);
        (1, return Input.Mix);
      ])

let tree_gen =
  QCheck.Gen.(
    let ops = list_size (int_range 1 5) op_gen in
    frequency
      [
        (3, map (fun l -> Input.Seq l) ops);
        (2, map2 (fun a b -> Input.If (a, b)) ops ops);
        (2, map2 (fun n l -> Input.Loop (1 + (n mod 4), l)) small_nat ops);
        (1, map (fun l -> Input.Unlocked l) ops);
      ])

let base_gen =
  QCheck.Gen.(
    frequency
      [
        (1, oneofl (List.map (fun w -> Input.Workload w) Ido_workloads.Workload.names));
        (2, map (fun ts -> Input.Random ts) (list_size (int_range 1 4) tree_gen));
      ])

let edit_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Mutate.Delete_hook (k mod 24)) small_nat;
        map (fun k -> Mutate.Dup_hook (k mod 24)) small_nat;
        map (fun k -> Mutate.Elide_cut (k mod 8)) small_nat;
        map (fun k -> Mutate.Drop_cut (k mod 8)) small_nat;
        return Mutate.Hoist_store;
      ])

let input_gen =
  QCheck.Gen.(
    let scheme =
      oneofl Scheme.[ Ido; Justdo; Atlas; Mnemosyne; Nvthreads ]
    in
    let variant =
      frequency
        [
          (3, return None);
          ( 1,
            map
              (fun i ->
                Some
                  (fst
                     (List.nth Ido_lint.Hook_model.variants
                        (i mod List.length Ido_lint.Hook_model.variants))))
              small_nat );
        ]
    in
    map2
      (fun (scheme, base) (edits, (variant, crashes)) ->
        Input.make ~edits ?variant ~crashes ~scheme base)
      (pair scheme base_gen)
      (pair
         (list_size (int_range 0 2) edit_gen)
         (pair variant (list_size (int_range 0 3) (int_bound 200)))))

let input_arb = QCheck.make ~print:Input.label input_gen

(* ---------- coverage ---------- *)

let cov_deterministic () =
  let spec = Engine.defaults ~scheme:Scheme.Justdo ~workload:"queue" () in
  let tr1 = Engine.run_traced ~index:25 spec in
  let tr2 = Engine.run_traced ~index:25 spec in
  let f1 = Cov.features ~scheme:"justdo" (Ido_obs.Obs.events tr1.Engine.t_obs) in
  let f2 = Cov.features ~scheme:"justdo" (Ido_obs.Obs.events tr2.Engine.t_obs) in
  Alcotest.(check bool) "same features" true (f1 = f2);
  Alcotest.(check string) "same digest" (Cov.digest f1) (Cov.digest f2);
  Alcotest.(check bool) "nonempty" true (Array.length f1 > 0);
  (* scheme salting: the same trace under another scheme name is a
     different behaviour *)
  let f3 = Cov.features ~scheme:"atlas" (Ido_obs.Obs.events tr1.Engine.t_obs) in
  Alcotest.(check bool) "scheme-salted" true (f1 <> f3)

let cov_seen_set () =
  let t = Cov.create () in
  let fs = [| 1; 2; 3 |] in
  Alcotest.(check int) "all novel" 3 (Cov.novel t fs);
  Cov.add t fs;
  Alcotest.(check int) "none novel" 0 (Cov.novel t fs);
  Alcotest.(check int) "one novel" 1 (Cov.novel t [| 3; 4 |]);
  Alcotest.(check int) "buckets" 3 (Cov.buckets t)

let cov_static () =
  let f1 = Cov.static_features ~scheme:"justdo" ~codes:[ "L201" ] ~shape:"x" in
  let f2 = Cov.static_features ~scheme:"justdo" ~codes:[ "L201" ] ~shape:"x" in
  let f3 = Cov.static_features ~scheme:"justdo" ~codes:[ "L202" ] ~shape:"x" in
  Alcotest.(check bool) "deterministic" true (f1 = f2);
  Alcotest.(check bool) "code-sensitive" true (f1 <> f3)

(* ---------- input codec ---------- *)

let prop_input_json_roundtrip =
  QCheck.Test.make ~name:"input json_fields/of_json is the identity"
    ~count:300 input_arb (fun i ->
      let line = "{" ^ Input.json_fields i ^ "}" in
      let i' = Input.of_json ~fail:(fun m -> Failure m) line in
      Input.equal i i')

let prop_base_string_roundtrip =
  QCheck.Test.make ~name:"base_to_string/base_of_string is the identity"
    ~count:300 input_arb (fun i ->
      Input.base_of_string (Input.base_to_string i.Input.base)
      = Some i.Input.base)

let prop_edit_string_roundtrip =
  QCheck.Test.make ~name:"edit codec round-trips"
    ~count:200
    (QCheck.make
       ~print:(fun e -> Mutate.edit_to_string e)
       edit_gen)
    (fun e -> Mutate.edit_of_string (Mutate.edit_to_string e) = Some e)

(* ---------- edits and mutation-corpus ingestion ---------- *)

(* Find a hook deletion on justdo/queue that the linter reports as a
   missing log hook, then round-trip it through [Mutate.ingest] and
   the PR-3 mutant runner. *)
let ingest_caught () =
  let clean = Input.make ~scheme:Scheme.Justdo (Input.Workload "queue") in
  let p = Exec.instrumented clean in
  let hooks = Mutate.hook_count p in
  Alcotest.(check bool) "has hooks" true (hooks > 0);
  let k =
    let rec find k =
      if k >= hooks then Alcotest.fail "no hook deletion yields L201"
      else
        let i =
          Input.make ~edits:[ Mutate.Delete_hook k ] ~scheme:Scheme.Justdo
            (Input.Workload "queue")
        in
        let o = Exec.run i in
        match o.Exec.o_failure with
        | Some f when List.mem "L201" f.Exec.f_codes -> k
        | _ -> find (k + 1)
    in
    find 0
  in
  let m =
    Mutate.ingest ~name:"test-del-hook" ~descr:"test"
      ~scheme:Scheme.Justdo ~workload:"queue" ~expect:"L201"
      ~edits:[ Mutate.Delete_hook k ] ()
  in
  let o = Ido_check.Lintrun.run_mutant m in
  Alcotest.(check bool) "ingested mutant caught" true o.Ido_check.Lintrun.caught

let mixed_stage_rejected () =
  Alcotest.check_raises "mixed stages"
    (Invalid_argument "Mutate.ingest: edits span both stages")
    (fun () ->
      ignore
        (Mutate.ingest ~name:"x" ~descr:"x" ~scheme:Scheme.Justdo
           ~workload:"queue" ~expect:"L201"
           ~edits:[ Mutate.Hoist_store; Mutate.Delete_hook 0 ] ()))

(* ---------- shrinking properties ---------- *)

let prop_shrink_candidates_monotone =
  QCheck.Test.make ~name:"shrink candidates strictly decrease size"
    ~count:300 input_arb (fun i ->
      List.for_all
        (fun c -> Input.size c < Input.size i)
        (Shrink.candidates i))

(* Failing inputs for the end-to-end shrink property: random genomes
   with a seeded bug (variant or unlocked tree), evaluated statically,
   so each property case costs one instrument+lint. *)
let failing_input_gen =
  QCheck.Gen.(
    let trees = list_size (int_range 1 4) tree_gen in
    map2
      (fun ts pick ->
        let scheme = Scheme.Justdo in
        match pick mod 3 with
        | 0 ->
            Input.make ~variant:"early-publish-justdo" ~scheme
              (Input.Random ts)
        | 1 ->
            Input.make ~edits:[ Mutate.Delete_hook (pick mod 8) ] ~scheme
              (Input.Random ts)
        | _ ->
            Input.make ~scheme
              (Input.Random (Input.Unlocked [ Input.Store (3, 7) ] :: ts)))
      trees small_nat)

let prop_shrink_preserves_failure =
  QCheck.Test.make
    ~name:"shrunk reproducer fails with the same primary code, monotonically"
    ~count:25
    (QCheck.make ~print:Input.label failing_input_gen)
    (fun i ->
      let o = Exec.run i in
      match o.Exec.o_failure with
      | None -> QCheck.assume_fail ()
      | Some _ ->
          let budget = 60 in
          let s = Shrink.shrink ~budget o in
          let still = s.Shrink.s_outcome.Exec.o_failure <> None in
          let same_code =
            Exec.primary_code s.Shrink.s_outcome = Exec.primary_code o
          in
          let monotone =
            Input.size s.Shrink.s_input <= Input.size i
          in
          let bounded = s.Shrink.s_runs <= budget in
          still && same_code && monotone && bounded)

(* ---------- campaign determinism ---------- *)

let small_config =
  {
    Fuzz.default_config with
    Fuzz.seed = 5;
    budget = 60;
    schemes = [ Scheme.Justdo ];
    workloads = [ "queue" ];
    shrink_budget = 40;
  }

let campaign_deterministic () =
  let r1 = Fuzz.run ?pool:None small_config in
  let r4 =
    Ido_util.Pool.with_pool 4 (fun pool -> Fuzz.run ~pool small_config)
  in
  Alcotest.(check string) "render identical at -j1 vs -j4" (Fuzz.render r1)
    (Fuzz.render r4);
  Alcotest.(check string) "corpus identical at -j1 vs -j4"
    (Corpus.to_ndjson r1.Fuzz.r_corpus)
    (Corpus.to_ndjson r4.Fuzz.r_corpus);
  Alcotest.(check bool) "campaign found something" true
    (r1.Fuzz.r_findings <> [])

(* ---------- corpus round-trips ---------- *)

let corpus_roundtrip () =
  let r = Fuzz.run ?pool:None small_config in
  let path = Filename.temp_file "ido_fuzz_corpus" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Corpus.save r.Fuzz.r_corpus path;
      let c = Corpus.load path in
      Alcotest.(check string) "load/save byte-identical"
        (Corpus.to_ndjson r.Fuzz.r_corpus)
        (Corpus.to_ndjson c);
      (* every finding replays to the same primary code; every clean
         entry stays clean *)
      Alcotest.(check int) "corpus replays faithfully" 0
        (List.length (Corpus.verify c)))

let corpus_feeds_mutation_corpus () =
  let r = Fuzz.run ?pool:None small_config in
  let mutants = Corpus.to_mutants r.Fuzz.r_corpus in
  Alcotest.(check bool) "some findings ingest as mutants" true (mutants <> []);
  List.iter
    (fun m ->
      let o = Ido_check.Lintrun.run_mutant m in
      Alcotest.(check bool)
        (Printf.sprintf "ingested %s caught" m.Mutate.name)
        true o.Ido_check.Lintrun.caught)
    mutants

(* A workload-base corpus finding round-trips through the PR-2 trace
   machinery: record the engine run it names, save, load, replay. *)
let corpus_entry_traces () =
  let spec = Engine.defaults ~scheme:Scheme.Justdo ~workload:"queue" () in
  let tr = Engine.run_traced ~index:30 spec in
  let path = Filename.temp_file "ido_fuzz_trace" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Ido_check.Trace.save tr path;
      let s = Ido_check.Trace.load path in
      let tr' = Ido_check.Trace.replay s in
      Alcotest.(check string) "replay digest matches" s.Ido_check.Trace.digest
        tr'.Engine.t_digest;
      let path2 = path ^ ".2" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path2 with Sys_error _ -> ())
        (fun () ->
          Ido_check.Trace.save tr' path2;
          let read p =
            let ic = open_in p in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          Alcotest.(check string) "re-save byte-identical" (read path)
            (read path2)))

(* ---------- rediscovery (bounded, one pair) ---------- *)

let rediscover_pair () =
  let config =
    {
      Fuzz.seed = 1;
      budget = 120;
      schemes = [ Scheme.Justdo ];
      workloads = [ "queue" ];
      rediscover = true;
      shrink_budget = 40;
      opt = false;
    }
  in
  let r = Fuzz.run ?pool:None config in
  let expected_here =
    List.filter
      (fun (m : Mutate.t) ->
        m.Mutate.scheme = Scheme.Justdo && m.Mutate.workload = "queue")
      Mutate.corpus
  in
  Alcotest.(check bool) "pair has seeded mutants" true (expected_here <> []);
  List.iter
    (fun (m : Mutate.t) ->
      let found =
        try List.assoc m.Mutate.name r.Fuzz.r_rediscovered
        with Not_found -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "re-found %s" m.Mutate.name)
        true found)
    expected_here

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "coverage features are deterministic" `Quick
          cov_deterministic;
        Alcotest.test_case "coverage seen-set counts novelty" `Quick
          cov_seen_set;
        Alcotest.test_case "static features keyed on codes" `Quick cov_static;
        qtest prop_input_json_roundtrip;
        qtest prop_base_string_roundtrip;
        qtest prop_edit_string_roundtrip;
        Alcotest.test_case "indexed edit ingests into mutation corpus" `Quick
          ingest_caught;
        Alcotest.test_case "ingest rejects mixed-stage edits" `Quick
          mixed_stage_rejected;
        qtest prop_shrink_candidates_monotone;
        qtest prop_shrink_preserves_failure;
        Alcotest.test_case "campaign byte-identical across pool sizes" `Slow
          campaign_deterministic;
        Alcotest.test_case "corpus NDJSON round-trips and replays" `Slow
          corpus_roundtrip;
        Alcotest.test_case "corpus findings feed the mutation corpus" `Slow
          corpus_feeds_mutation_corpus;
        Alcotest.test_case "workload finding round-trips via trace" `Quick
          corpus_entry_traces;
        Alcotest.test_case "rediscovers the pair's seeded mutants" `Slow
          rediscover_pair;
      ] );
  ]
