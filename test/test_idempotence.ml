(* The paper's core invariant (Sec. II-C): with boundaries placed by
   the region-formation analysis, re-executing the current region from
   its entry — which is exactly what iDO recovery does — produces the
   same final persistent state as a crash-free run.

   We generate random single-FASE programs over a small persistent
   array (loads, stores, arithmetic, address-computed stores), run each
   under iDO to completion to obtain the reference heap, then re-run
   with a crash injected at every plausible simulated instant followed
   by recovery, and require the recovered heap to equal the reference.

   This exercises the whole pipeline end to end: alias analysis,
   antidependence detection, cut placement, boundary persisting,
   epoch-stamped lock records and resumption. *)

open Ido_ir
open Ido_runtime
module Vm = Ido_vm.Vm
module Wcommon = Ido_workloads.Wcommon

let qtest = QCheck_alcotest.to_alcotest

let cells = 16

(* A random FASE body instruction. *)
type op =
  | Load of int  (* dst pool slot <- cells[k] *)
  | Store of int * int  (* cells[k] <- pool slot value *)
  | Addi of int  (* pool value += k *)
  | Mix  (* combine two pool values *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun k -> Load (k mod cells)) small_nat);
        (4, map2 (fun k v -> Store (k mod cells, v)) small_nat small_nat);
        (2, map (fun k -> Addi (k mod 7)) small_nat);
        (1, return Mix);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Load k -> Printf.sprintf "L%d" k
             | Store (k, v) -> Printf.sprintf "S%d<-%d" k v
             | Addi k -> Printf.sprintf "A%d" k
             | Mix -> "M")
           ops))
    QCheck.Gen.(list_size (int_range 1 24) op_gen)

(* Build: init allocates the cell array (+ lock holder); worker runs
   one lock-delineated FASE executing [ops] against it. *)
let program_of ops =
  let b, _ = Builder.create ~name:"init" ~nparams:0 in
  let arr = Wcommon.alloc_node b (cells + 1) [] in
  (* Make cells start nonzero so stores are distinguishable. *)
  for i = 0 to cells - 1 do
    Builder.store b Ir.Persistent (Ir.Reg arr) i (Ir.Imm (Int64.of_int (100 + i)))
  done;
  Wcommon.set_root b 0 (Ir.Reg arr);
  Builder.ret b None;
  let init = Builder.finish b in
  let b, _ = Builder.create ~name:"worker" ~nparams:1 in
  let arr = Wcommon.get_root b 0 in
  let lockid = Builder.bin b Ir.Add (Ir.Reg arr) (Ir.Imm (Int64.of_int cells)) in
  Builder.lock b (Ir.Reg lockid);
  let v1 = Builder.mov b (Ir.Imm 1L) in
  let v2 = Builder.mov b (Ir.Imm 2L) in
  List.iter
    (fun op ->
      match op with
      | Load k ->
          let x = Builder.load b Ir.Persistent (Ir.Reg arr) k in
          Builder.assign b v1 (Ir.Reg x)
      | Store (k, v) ->
          let x = Builder.bin b Ir.Add (Ir.Reg v1) (Ir.Imm (Int64.of_int v)) in
          Builder.store b Ir.Persistent (Ir.Reg arr) k (Ir.Reg x)
      | Addi k -> Builder.assign_bin b v2 Ir.Add (Ir.Reg v2) (Ir.Imm (Int64.of_int k))
      | Mix -> Builder.assign_bin b v1 Ir.Xor (Ir.Reg v1) (Ir.Reg v2))
    ops;
  Builder.unlock b (Ir.Reg lockid);
  Builder.ret b None;
  let worker = Builder.finish b in
  { Ir.funcs = [ ("init", init); ("worker", worker) ] }

let heap_cells m =
  let pm = Vm.pmem m in
  let arr = Int64.to_int (Ido_region.Region.get_root (Vm.region m) 0) in
  Array.init cells (fun i -> Ido_nvm.Pmem.load pm (arr + i))

let run_reference prog seed =
  let m = Vm.create { (Vm.config Scheme.Ido) with seed } prog in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  ignore (Vm.run m);
  Vm.flush_all m;
  let _ = Vm.spawn m ~fname:"worker" ~args:[ 0L ] in
  (match Vm.run m with `Idle -> () | _ -> failwith "reference run stuck");
  (heap_cells m, Vm.clock m)

let run_with_crash scheme prog seed crash_at =
  let m = Vm.create { (Vm.config scheme) with seed } prog in
  let _ = Vm.spawn m ~fname:"init" ~args:[] in
  ignore (Vm.run m);
  Vm.flush_all m;
  let t0 = Vm.clock m in
  let _ = Vm.spawn m ~fname:"worker" ~args:[ 0L ] in
  (match Vm.run ~until:(t0 + crash_at) m with
  | `Until | `Idle -> ()
  | _ -> failwith "crash run stuck");
  Vm.crash m;
  let stats = Vm.recover m in
  (heap_cells m, stats.Ido_vm.Recover.fases_resumed)

let initial_cells = Array.init cells (fun i -> Int64.of_int (100 + i))

let prop_recovery_reaches_reference =
  QCheck.Test.make ~name:"resumed FASEs complete to the crash-free heap" ~count:60
    ops_arb
    (fun ops ->
      let prog = program_of ops in
      let seed = 1 + (Hashtbl.hash ops mod 1000) in
      let reference, end_clock = run_reference prog seed in
      (* Crash at several instants spanning the whole FASE.  When the
         crash caught an open FASE (a resumption happened), recovery
         must complete it to the reference heap; otherwise the heap is
         the reference (FASE already finished) or untouched (FASE not
         yet started). *)
      List.for_all
        (fun frac ->
          let crash_at = max 1 (end_clock * frac / 10) in
          let got, resumed = run_with_crash Scheme.Ido prog seed crash_at in
          if resumed > 0 then got = reference
          else got = reference || got = initial_cells)
        [ 1; 3; 5; 7; 9 ])

(* The same invariant must hold for every other recoverable scheme:
   after crash + recovery the heap is either the reference (resumption
   schemes complete the FASE) or the initial state (rollback schemes
   discard it) — never a torn mixture. *)

let prop_all_schemes_atomic =
  QCheck.Test.make ~name:"every scheme yields all-or-nothing heaps" ~count:25
    ops_arb
    (fun ops ->
      let prog = program_of ops in
      let seed = 1 + (Hashtbl.hash ops mod 1000) in
      List.for_all
        (fun scheme ->
          let reference, end_clock =
            let m = Vm.create { (Vm.config scheme) with seed } prog in
            let _ = Vm.spawn m ~fname:"init" ~args:[] in
            ignore (Vm.run m);
            Vm.flush_all m;
            let _ = Vm.spawn m ~fname:"worker" ~args:[ 0L ] in
            (match Vm.run m with `Idle -> () | _ -> failwith "stuck");
            (heap_cells m, Vm.clock m)
          in
          List.for_all
            (fun frac ->
              let m = Vm.create { (Vm.config scheme) with seed } prog in
              let _ = Vm.spawn m ~fname:"init" ~args:[] in
              ignore (Vm.run m);
              Vm.flush_all m;
              let t0 = Vm.clock m in
              let _ = Vm.spawn m ~fname:"worker" ~args:[ 0L ] in
              (match Vm.run ~until:(t0 + max 1 (end_clock * frac / 10)) m with
              | `Until | `Idle -> ()
              | _ -> failwith "stuck");
              Vm.crash m;
              let _ = Vm.recover m in
              let got = heap_cells m in
              got = reference || got = initial_cells)
            [ 2; 5; 8 ])
        Scheme.[ Ido; Justdo; Atlas; Mnemosyne; Nvthreads ])

(* ------------------------------------------------------------------ *)
(* Structured control flow inside the FASE: random diamonds and
   bounded loops exercise cross-block antidependences, loop-header
   handling, liveness across joins, and resumption into arbitrary
   block positions. *)

type tree = Seq of op list | If of op list * op list | Loop of int * op list

let tree_gen =
  QCheck.Gen.(
    let ops = list_size (int_range 1 6) op_gen in
    frequency
      [
        (3, map (fun l -> Seq l) ops);
        (2, map2 (fun a b -> If (a, b)) ops ops);
        (2, map2 (fun n l -> Loop (1 + (n mod 4), l)) small_nat ops);
      ])

let trees_arb =
  let print_ops ops =
    String.concat ";"
      (List.map
         (function
           | Load k -> Printf.sprintf "L%d" k
           | Store (k, v) -> Printf.sprintf "S%d<-%d" k v
           | Addi k -> Printf.sprintf "A%d" k
           | Mix -> "M")
         ops)
  in
  QCheck.make
    ~print:(fun ts ->
      String.concat " | "
        (List.map
           (function
             | Seq l -> "seq(" ^ print_ops l ^ ")"
             | If (a, b) -> "if(" ^ print_ops a ^ " / " ^ print_ops b ^ ")"
             | Loop (n, l) -> Printf.sprintf "loop%d(%s)" n (print_ops l))
           ts))
    QCheck.Gen.(list_size (int_range 1 5) tree_gen)

let program_of_trees trees =
  let b0, _ = Builder.create ~name:"init" ~nparams:0 in
  let arr = Wcommon.alloc_node b0 (cells + 1) [] in
  for i = 0 to cells - 1 do
    Builder.store b0 Ir.Persistent (Ir.Reg arr) i (Ir.Imm (Int64.of_int (100 + i)))
  done;
  Wcommon.set_root b0 0 (Ir.Reg arr);
  Builder.ret b0 None;
  let init = Builder.finish b0 in
  let b, _ = Builder.create ~name:"worker" ~nparams:1 in
  let arr = Wcommon.get_root b 0 in
  let lockid = Builder.bin b Ir.Add (Ir.Reg arr) (Ir.Imm (Int64.of_int cells)) in
  Builder.lock b (Ir.Reg lockid);
  let v1 = Builder.mov b (Ir.Imm 1L) in
  let v2 = Builder.mov b (Ir.Imm 2L) in
  let emit_op op =
    match op with
    | Load k ->
        let x = Builder.load b Ir.Persistent (Ir.Reg arr) k in
        Builder.assign b v1 (Ir.Reg x)
    | Store (k, v) ->
        let x = Builder.bin b Ir.Add (Ir.Reg v1) (Ir.Imm (Int64.of_int v)) in
        Builder.store b Ir.Persistent (Ir.Reg arr) k (Ir.Reg x)
    | Addi k -> Builder.assign_bin b v2 Ir.Add (Ir.Reg v2) (Ir.Imm (Int64.of_int k))
    | Mix -> Builder.assign_bin b v1 Ir.Xor (Ir.Reg v1) (Ir.Reg v2)
  in
  List.iter
    (fun t ->
      match t with
      | Seq ops -> List.iter emit_op ops
      | If (a, c) ->
          let parity = Builder.bin b Ir.And (Ir.Reg v2) (Ir.Imm 1L) in
          Builder.if_ b (Ir.Reg parity)
            ~then_:(fun () -> List.iter emit_op a)
            ~else_:(fun () -> List.iter emit_op c)
      | Loop (n, ops) ->
          let i = Builder.mov b (Ir.Imm 0L) in
          Builder.while_ b
            ~cond:(fun () ->
              Ir.Reg (Builder.bin b Ir.Lt (Ir.Reg i) (Ir.Imm (Int64.of_int n))))
            ~body:(fun () ->
              List.iter emit_op ops;
              Builder.assign_bin b i Ir.Add (Ir.Reg i) (Ir.Imm 1L)))
    trees;
  Builder.unlock b (Ir.Reg lockid);
  Builder.ret b None;
  { Ir.funcs = [ ("init", init); ("worker", Builder.finish b) ] }

let prop_structured_recovery =
  QCheck.Test.make
    ~name:"resumption correct across branches and loops" ~count:50 trees_arb
    (fun trees ->
      let prog = program_of_trees trees in
      let seed = 1 + (Hashtbl.hash trees mod 1000) in
      let reference, end_clock = run_reference prog seed in
      List.for_all
        (fun frac ->
          let crash_at = max 1 (end_clock * frac / 12) in
          let got, resumed = run_with_crash Scheme.Ido prog seed crash_at in
          if resumed > 0 then got = reference
          else got = reference || got = initial_cells)
        [ 1; 2; 4; 6; 8; 10; 11 ])

(* ------------------------------------------------------------------ *)
(* Static counterpart of the dynamic properties above: region
   formation must never leave a memory antidependence (WAR) inside a
   region, or re-execution from the region entry could observe its own
   writes (Sec. II-C).  Checked over a seeded, deterministic corpus of
   random control-flow shapes via the analysis's own exhaustive
   path-bounded verifier. *)

module Rng = Ido_util.Rng

let rng_op rng =
  match Rng.int rng 10 with
  | 0 | 1 | 2 -> Load (Rng.int rng cells)
  | 3 | 4 | 5 | 6 -> Store (Rng.int rng cells, Rng.int rng 50)
  | 7 | 8 -> Addi (Rng.int rng 7)
  | _ -> Mix

let rng_ops rng n = List.init (1 + Rng.int rng n) (fun _ -> rng_op rng)

let rng_tree rng =
  match Rng.int rng 7 with
  | 0 | 1 | 2 -> Seq (rng_ops rng 6)
  | 3 | 4 -> If (rng_ops rng 6, rng_ops rng 6)
  | _ -> Loop (1 + Rng.int rng 4, rng_ops rng 6)

let regions_war_free () =
  let rng = Rng.create 0xC0FFEE in
  for i = 1 to 150 do
    let trees = List.init (1 + Rng.int rng 5) (fun _ -> rng_tree rng) in
    let prog = program_of_trees trees in
    let f = List.assoc "worker" prog.Ir.funcs in
    let cfg = Ido_analysis.Cfg.build f in
    let fase = Ido_analysis.Fase.compute_exn cfg in
    let lv = Ido_analysis.Liveness.compute cfg in
    let alias = Ido_analysis.Alias.compute f in
    let plan = Ido_analysis.Regions.compute cfg fase lv alias in
    Alcotest.(check bool)
      (Printf.sprintf "corpus function %d has no intra-region WAR" i)
      true
      (Ido_analysis.Regions.verify_no_war_within_regions cfg fase alias plan)
  done

let suites =
  [
    ( "idempotence",
      [
        qtest prop_recovery_reaches_reference;
        qtest prop_all_schemes_atomic;
        qtest prop_structured_recovery;
        Alcotest.test_case "random CFG corpus: regions are WAR-free" `Quick
          regions_war_free;
      ] );
  ]
